//! # rpu — the Ring Processing Unit
//!
//! A from-scratch Rust reproduction of *"RPU: The Ring Processing Unit"*
//! (ISPASS 2023): the B512 vector ISA, a cycle-level model of the RPU
//! microarchitecture, a SPIRAL-style NTT code generator, large-word
//! modular arithmetic, a reference RLWE polynomial library, and GF 12nm
//! area/energy models — everything needed to regenerate the paper's
//! evaluation (see EXPERIMENTS.md).
//!
//! This crate is the facade: it re-exports the workspace and adds the
//! high-level [`Rpu`] object, the session-based workload API
//! ([`RpuBuilder`] / [`RpuSession`]), the device-resident buffer
//! runtime ([`DeviceBuffer`] / [`RpuSession::dispatch`] /
//! [`RlweEvaluator`]), the multi-lane RNS execution engine
//! ([`RpuCluster`] / [`RnsExecutor`]), and design-space exploration
//! helpers.
//!
//! # Quickstart
//!
//! Build an [`Rpu`], open a session, and run workload specs through it.
//! The session caches generated kernels by `(op, n, q, direction,
//! style)` and memoizes NTT-prime searches, so repeated and batched runs
//! pay generation cost once:
//!
//! ```
//! use rpu::{CodegenStyle, ConvolutionSpec, Direction, NttSpec, Rpu};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The paper's best design point: 128 HPLEs, 128 VDM banks.
//! let rpu = Rpu::builder().geometry(128, 128).build()?;
//! let mut session = rpu.session();
//!
//! // One forward NTT (the session picks the ~126-bit prime).
//! let run = session.ntt(4096, Direction::Forward, CodegenStyle::Optimized)?;
//! assert!(run.verified); // matched the golden NTT model
//! println!(
//!     "4K NTT: {} cycles = {:.2} us, {:.1} uJ on {:.1} mm2",
//!     run.stats.cycles,
//!     run.runtime_us,
//!     run.energy.total_uj(),
//!     rpu.area().total(),
//! );
//!
//! // A full negacyclic polynomial product as ONE on-RPU program
//! // (forward NTT x2 -> pointwise multiply -> inverse NTT), and a
//! // repeat of the NTT above — a cache hit, no regeneration.
//! let q = session.primes_for(4096)?;
//! let conv = session.run(&ConvolutionSpec::new(4096, q, CodegenStyle::Optimized))?;
//! let again = session.run(&NttSpec::new(4096, q, Direction::Forward, CodegenStyle::Optimized))?;
//! assert!(conv.verified && again.cache_hit);
//! # Ok(())
//! # }
//! ```
//!
//! # Resident pipelines
//!
//! The paper's execution model keeps ring data resident in the VDM
//! while kernels stream over it. Sessions expose that model directly:
//! kernels are compiled once per *shape* (no data in the cache key) and
//! dispatched over [`DeviceBuffer`]s, so an L-op pipeline costs one
//! upload, L dispatches, and one download instead of L host round
//! trips:
//!
//! ```
//! use rpu::{CodegenStyle, ElementwiseOp, ElementwiseSpec, Rpu};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let rpu = Rpu::builder().build()?;
//! let mut s = rpu.session();
//! let q = s.primes_for(1024)?;
//! let mul = s.compile(&ElementwiseSpec::new(
//!     ElementwiseOp::MulMod, 1024, q, CodegenStyle::Optimized))?;
//! let x = s.upload(&vec![2u128; 1024])?;   // host → device, once
//! let w = s.upload(&vec![3u128; 1024])?;
//! let y = s.alloc(1024)?;
//! s.dispatch(&mul, &[x, w], &[y])?;        // resident, no host traffic
//! let report = s.dispatch(&mul, &[y, w], &[y])?;
//! assert_eq!(report.transfer.host_to_device, 0);
//! assert_eq!(s.download(&y)?[0], 18);      // device → host, once
//! # Ok(())
//! # }
//! ```
//!
//! [`RlweEvaluator`] builds full ciphertext pipelines on this runtime:
//! encrypt/add/sub/mul_plain/decrypt as chains of dispatches over
//! resident ciphertexts, verified against the host
//! [`rpu_ntt::rlwe::RlweContext`].
//!
//! # Multi-lane RNS execution
//!
//! RNS towers are independent work (Section II-B), so they shard:
//! [`RpuBuilder::lanes`] builds an [`RpuCluster`] of `k` full sessions
//! (one simulated RPU die each) and [`RnsExecutor`] spreads tower jobs
//! over them with a work-stealing scheduler, CRT-recombining on the
//! host — 8 towers on 4 lanes finish in a 2-tower makespan:
//!
//! ```
//! use rpu::{RnsExecutor, Rpu};
//! use rpu::arith::{find_ntt_prime_chain, RnsBasis};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let rpu = Rpu::builder().lanes(2).build()?;
//! let mut exec = RnsExecutor::new(rpu.cluster());
//! let primes = find_ntt_prime_chain(60, 2 * 1024, 4);
//! let basis = RnsBasis::new(primes.clone())?;
//! let a = basis.split_u128_poly(&vec![7u128; 1024]);
//! let b = basis.split_u128_poly(&vec![9u128; 1024]);
//! let (products, report) = exec.negacyclic_mul_towers(1024, &primes, &a, &b)?;
//! let wide = basis.recombine_poly(&products);
//! assert_eq!(products.len(), 4);
//! assert!(report.speedup() > 1.0);
//! # Ok(())
//! # }
//! ```
//!
//! # Serving many tenants
//!
//! The `rpu-serve` crate (workspace member) layers a persistent
//! multi-tenant service on the cluster: typed encrypt/eval/decrypt jobs
//! behind ticketed submission, weighted-fair scheduling, bounded queues
//! with typed backpressure, and per-tenant key isolation. Its engine is
//! [`RpuCluster::with_workers`] — one parked worker thread per lane
//! draining a [`LanePool`] of shared (work-stealing) and lane-pinned
//! jobs for as long as the service lives.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod buffer;
mod explore;
mod lanes;
mod leveled;
mod rlwe;
mod run;
mod session;
mod snapshot;
mod trace;

pub use buffer::{BufferAllocator, BufferError, DeviceBuffer, TransferStats};
pub use explore::{evaluate_point, explore_design_space, paper_sweep, PAPER_BANKS, PAPER_HPLES};
pub use lanes::{
    ClusterRunReport, LaneJob, LanePool, LaneStats, LaneWorker, PoolJob, RnsExecutor, RpuCluster,
    TowerJob,
};
pub use leveled::{DeviceLeveledCiphertext, DeviceLeveledRelinKey, LeveledEvaluator};
pub use rlwe::{DeviceCiphertext, DeviceKeySwitchKey, RlweEvaluator};
pub use run::{Rpu, RunReport};
pub use session::{CacheStats, CachedKernel, KernelCache, PrimeTable, RpuBuilder, RpuSession};
pub use snapshot::SnapshotError;
pub use trace::{set_dispatch_tenant, DispatchEvent, RingTraceSink, TenantTag, TraceSink};

// Re-export the component crates under stable names.
pub use rpu_arith as arith;
pub use rpu_codegen as codegen;
pub use rpu_isa as isa;
pub use rpu_model as model;
pub use rpu_ntt as ntt;
pub use rpu_sim as sim;

// And the most-used types at the top level.
pub use rpu_codegen::{
    AutomorphismSpec, CodegenStyle, ConvolutionSpec, Direction, ElementwiseOp, ElementwiseSpec,
    EngineKind, Kernel, KernelKey, KernelOp, KernelSpec, KeySwitchSpec, NttKernel, NttSpec,
    RescaleSpec,
};
pub use rpu_model::{AreaModel, DesignPoint, EnergyModel, F1Comparison};
pub use rpu_ntt::leveled::{
    LeveledCiphertext, LeveledContext, LeveledError, LeveledRelinKey, LeveledSecretKey, NoiseBudget,
};
pub use rpu_ntt::{Ntt128Plan, Ntt64Plan, PeaseSchedule, Polynomial, RnsPolynomial};
pub use rpu_sim::{CycleSim, FunctionalSim, HbmModel, RpuConfig, SimStats};

/// Clamps a requested ring size to `cap` for reduced-size smoke runs:
/// the cap is floored to a power of two and raised to the kernel
/// generator's minimum supported degree (1024 = 2 × the vector length).
///
/// This is the single definition of the cap rule shared by the examples
/// and the `rpu-bench` figure binaries.
pub fn clamp_ring_size(full: usize, cap: usize) -> usize {
    let cap = cap.max(2 * rpu_isa::consts::VECTOR_LEN);
    full.min(1 << cap.ilog2())
}

/// Applies the `RPU_MAX_N` environment cap to a paper ring size, if the
/// variable is set and parses; full size otherwise. See
/// [`clamp_ring_size`] for the clamping rule.
pub fn smoke_cap(full: usize) -> usize {
    std::env::var("RPU_MAX_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .map_or(full, |cap| clamp_ring_size(full, cap))
}

/// Errors from the high-level API.
#[derive(Debug)]
pub enum RpuError {
    /// Invalid microarchitectural configuration.
    Config(String),
    /// No NTT-friendly prime exists below the session's width for this
    /// ring degree.
    NoPrime {
        /// The requested ring degree.
        degree: usize,
    },
    /// Kernel generation failed.
    Codegen(rpu_codegen::CodegenError),
    /// The generated program faulted in the functional simulator.
    Exec(rpu_sim::ExecError),
    /// A device-buffer operation failed (exhausted heap, stale handle,
    /// shape mismatch at dispatch, …).
    Buffer(BufferError),
    /// The host-side ring/RLWE library rejected the parameters.
    Ring(rpu_ntt::NttError),
    /// The leveled-ciphertext layer rejected an operation (bad chain,
    /// bottom-of-chain rescale, level out of range, …).
    Leveled(rpu_ntt::leveled::LeveledError),
    /// A lane worker panicked mid-job in the cluster scheduler; the
    /// panic was caught on the worker thread and the run aborted cleanly
    /// (no poisoned queue, no wedged lanes).
    LanePanic {
        /// The lane whose job panicked.
        lane: usize,
        /// The panic payload, if it was a string.
        message: String,
    },
    /// A device snapshot could not be decoded or restored (corrupt or
    /// future-version bytes, geometry mismatch, live buffers in the
    /// target, …).
    Snapshot(SnapshotError),
}

impl core::fmt::Display for RpuError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RpuError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            RpuError::NoPrime { degree } => {
                write!(f, "no NTT prime found for ring degree {degree}")
            }
            RpuError::Codegen(e) => write!(f, "code generation failed: {e}"),
            RpuError::Exec(e) => write!(f, "kernel execution failed: {e}"),
            RpuError::Buffer(e) => write!(f, "device buffer operation failed: {e}"),
            RpuError::Ring(e) => write!(f, "ring parameters rejected: {e}"),
            RpuError::Leveled(e) => write!(f, "leveled ciphertext operation failed: {e}"),
            RpuError::LanePanic { lane, message } => {
                write!(f, "lane {lane} worker panicked mid-job: {message}")
            }
            RpuError::Snapshot(e) => write!(f, "device snapshot operation failed: {e}"),
        }
    }
}

impl std::error::Error for RpuError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RpuError::Codegen(e) => Some(e),
            RpuError::Exec(e) => Some(e),
            RpuError::Buffer(e) => Some(e),
            RpuError::Ring(e) => Some(e),
            RpuError::Leveled(e) => Some(e),
            RpuError::Snapshot(e) => Some(e),
            _ => None,
        }
    }
}

impl From<rpu_codegen::CodegenError> for RpuError {
    fn from(e: rpu_codegen::CodegenError) -> Self {
        RpuError::Codegen(e)
    }
}

impl From<BufferError> for RpuError {
    fn from(e: BufferError) -> Self {
        RpuError::Buffer(e)
    }
}

impl From<rpu_ntt::NttError> for RpuError {
    fn from(e: rpu_ntt::NttError) -> Self {
        RpuError::Ring(e)
    }
}

impl From<rpu_ntt::leveled::LeveledError> for RpuError {
    fn from(e: rpu_ntt::leveled::LeveledError) -> Self {
        RpuError::Leveled(e)
    }
}

impl From<SnapshotError> for RpuError {
    fn from(e: SnapshotError) -> Self {
        RpuError::Snapshot(e)
    }
}
