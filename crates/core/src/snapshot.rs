//! The `SNAP_V1` versioned device-snapshot wire format.
//!
//! A snapshot serializes the full persistent device state of a session
//! — VDM/SDM images, the heap map (live and free blocks), the
//! kernel-cache keys, and the loaded-image identity — behind a
//! versioned header with explicit endianness and length-prefixed
//! sections. Cluster snapshots wrap one session snapshot per lane plus
//! the buffer→lane placement map.
//!
//! Layout (all integers little-endian; see `docs/snapshot-format.md`
//! for the normative description):
//!
//! ```text
//! header   := magic "SNAP" | version u16 | endianness u8 (0x01 = LE)
//!           | kind u8 ('S' session, 'C' cluster) | section count u32
//! section  := tag [u8; 4] | payload len u64 | payload
//! ```
//!
//! Versioning policy: within a version, sections are **additive only**
//! — decoders skip unknown tags, so newer writers stay readable by the
//! same-version decoder. Any change to an existing section's layout
//! bumps the version, and a decoder seeing a version it does not
//! support fails with [`SnapshotError::UnsupportedVersion`], never a
//! panic or a misparse.
//!
//! This module owns the pure format (encode/decode to plain images);
//! the session layer owns the semantics (geometry checks, kernel
//! re-pinning, atomic state swap).

use rpu_codegen::KernelKey;

/// Magic bytes opening every snapshot.
pub(crate) const MAGIC: [u8; 4] = *b"SNAP";
/// The format version this build writes and reads.
pub(crate) const VERSION: u16 = 1;
/// Endianness marker: all multi-byte integers are little-endian.
const LITTLE_ENDIAN: u8 = 0x01;
/// Header kind byte for a single-session snapshot.
pub(crate) const KIND_SESSION: u8 = b'S';
/// Header kind byte for a cluster snapshot (one session per lane).
pub(crate) const KIND_CLUSTER: u8 = b'C';

/// Errors decoding or applying a device snapshot. Corrupted or
/// future-version bytes always surface here — restore never panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The bytes do not begin with the `SNAP` magic.
    BadMagic,
    /// The snapshot was written by a newer (or unknown) format version.
    UnsupportedVersion {
        /// Version recorded in the header.
        found: u16,
        /// Newest version this build decodes.
        supported: u16,
    },
    /// The bytes end before a section or header field is complete.
    Truncated {
        /// What was being decoded when the bytes ran out.
        section: &'static str,
    },
    /// The bytes parse but describe an inconsistent state (bad
    /// endianness marker, wrong kind, missing section, malformed heap
    /// map, …).
    Corrupt(String),
    /// `restore` was called on a session that still has live device
    /// buffers; freeing them implicitly would invite double frees. Free
    /// them first, or use the replacing restore, which atomically
    /// invalidates them.
    LiveBuffers {
        /// Live buffers in the target session.
        live: usize,
    },
    /// A cluster snapshot's lane count does not match the target
    /// cluster.
    LaneCountMismatch {
        /// Lanes recorded in the snapshot.
        snapshot: usize,
        /// Lanes in the target cluster.
        cluster: usize,
    },
    /// The snapshot was taken on a device with a different geometry
    /// than the restore target (workspace size, heap base, capacity).
    GeometryMismatch {
        /// Which geometry parameter disagrees.
        what: &'static str,
        /// The snapshot's value.
        snapshot: u64,
        /// The target session's value.
        target: u64,
    },
    /// A cached kernel recorded in the snapshot could not be rebuilt on
    /// the target (unknown key, or generation failed).
    KernelRebuild {
        /// Human-readable cause.
        detail: String,
    },
}

impl core::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a device snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion { found, supported } => write!(
                f,
                "snapshot version {found} is not supported (this build reads up to \
                 version {supported})"
            ),
            SnapshotError::Truncated { section } => {
                write!(f, "snapshot truncated while decoding {section}")
            }
            SnapshotError::Corrupt(detail) => write!(f, "snapshot is corrupt: {detail}"),
            SnapshotError::LiveBuffers { live } => write!(
                f,
                "session still has {live} live device buffer(s); free them first or \
                 use the replacing restore"
            ),
            SnapshotError::LaneCountMismatch { snapshot, cluster } => write!(
                f,
                "cluster snapshot has {snapshot} lane(s) but the target cluster has \
                 {cluster}"
            ),
            SnapshotError::GeometryMismatch {
                what,
                snapshot,
                target,
            } => write!(
                f,
                "snapshot {what} is {snapshot} but the target session's is {target}"
            ),
            SnapshotError::KernelRebuild { detail } => {
                write!(f, "could not re-pin a snapshotted kernel: {detail}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Live allocations as `(id, offset, len)` tuples.
pub(crate) type LiveBlocks = Vec<(u64, u64, u64)>;
/// Free heap blocks as `(offset, len)` tuples.
pub(crate) type FreeBlocks = Vec<(u64, u64)>;
/// The buffer→lane placement map from a cluster snapshot.
pub(crate) type OwnerMap = Vec<(u64, u64)>;

/// The decoded persistent state of one session — the pure-data form
/// between the wire format and the session that applies it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct SessionImage {
    /// Elements reserved for kernel working sets (VDM bottom).
    pub workspace: u64,
    /// Absolute element offset where the buffer heap begins.
    pub heap_base: u64,
    /// Heap capacity in elements.
    pub heap_capacity: u64,
    /// Heap-relative high-water mark at snapshot time.
    pub high_water: u64,
    /// Full VDM contents at snapshot time.
    pub vdm: Vec<u128>,
    /// Full SDM contents at snapshot time.
    pub sdm: Vec<u128>,
    /// Live allocations as `(id, offset, len)`, sorted by id.
    pub live: LiveBlocks,
    /// Free blocks as `(offset, len)`, sorted by offset.
    pub free: FreeBlocks,
    /// Keys of every kernel the cache held, sorted by encoding.
    pub keys: Vec<KernelKey>,
    /// Identity of the kernel image resident in the workspace, if any.
    pub loaded: Option<KernelKey>,
}

fn push_header(out: &mut Vec<u8>, kind: u8, sections: u32) {
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.push(LITTLE_ENDIAN);
    out.push(kind);
    out.extend_from_slice(&sections.to_le_bytes());
}

fn push_section(out: &mut Vec<u8>, tag: &[u8; 4], payload: &[u8]) {
    out.extend_from_slice(tag);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Encodes a session image as `SNAP_V1` bytes.
pub(crate) fn encode_session(image: &SessionImage) -> Vec<u8> {
    let mut meta = Vec::with_capacity(48);
    meta.extend_from_slice(&image.workspace.to_le_bytes());
    meta.extend_from_slice(&image.heap_base.to_le_bytes());
    meta.extend_from_slice(&image.heap_capacity.to_le_bytes());
    meta.extend_from_slice(&image.high_water.to_le_bytes());
    meta.extend_from_slice(&(image.vdm.len() as u64).to_le_bytes());
    meta.extend_from_slice(&(image.sdm.len() as u64).to_le_bytes());

    let mut vdm = Vec::with_capacity(image.vdm.len() * 16);
    for &x in &image.vdm {
        vdm.extend_from_slice(&x.to_le_bytes());
    }
    let mut sdm = Vec::with_capacity(image.sdm.len() * 16);
    for &x in &image.sdm {
        sdm.extend_from_slice(&x.to_le_bytes());
    }

    let mut heap = Vec::new();
    heap.extend_from_slice(&(image.live.len() as u64).to_le_bytes());
    for &(id, offset, len) in &image.live {
        heap.extend_from_slice(&id.to_le_bytes());
        heap.extend_from_slice(&offset.to_le_bytes());
        heap.extend_from_slice(&len.to_le_bytes());
    }
    heap.extend_from_slice(&(image.free.len() as u64).to_le_bytes());
    for &(offset, len) in &image.free {
        heap.extend_from_slice(&offset.to_le_bytes());
        heap.extend_from_slice(&len.to_le_bytes());
    }

    let mut keys = Vec::new();
    keys.extend_from_slice(&(image.keys.len() as u64).to_le_bytes());
    for key in &image.keys {
        keys.extend_from_slice(&key.to_bytes());
    }

    let mut lodk = Vec::with_capacity(1 + KernelKey::ENCODED_LEN);
    match &image.loaded {
        Some(key) => {
            lodk.push(1);
            lodk.extend_from_slice(&key.to_bytes());
        }
        None => lodk.push(0),
    }

    let mut out = Vec::new();
    push_header(&mut out, KIND_SESSION, 6);
    push_section(&mut out, b"META", &meta);
    push_section(&mut out, b"VDM ", &vdm);
    push_section(&mut out, b"SDM ", &sdm);
    push_section(&mut out, b"HEAP", &heap);
    push_section(&mut out, b"KEYS", &keys);
    push_section(&mut out, b"LODK", &lodk);
    out
}

/// Encodes a cluster snapshot: the placement map plus one full session
/// snapshot per lane (in lane order).
pub(crate) fn encode_cluster(owners: &[(u64, u64)], lanes: &[Vec<u8>]) -> Vec<u8> {
    let mut ownr = Vec::new();
    ownr.extend_from_slice(&(owners.len() as u64).to_le_bytes());
    for &(id, lane) in owners {
        ownr.extend_from_slice(&id.to_le_bytes());
        ownr.extend_from_slice(&lane.to_le_bytes());
    }
    let mut out = Vec::new();
    push_header(&mut out, KIND_CLUSTER, 1 + lanes.len() as u32);
    push_section(&mut out, b"OWNR", &ownr);
    for lane in lanes {
        push_section(&mut out, b"LANE", lane);
    }
    out
}

/// Cursor over snapshot bytes with typed, bounds-checked reads.
struct Reader<'b> {
    bytes: &'b [u8],
    pos: usize,
}

impl<'b> Reader<'b> {
    fn new(bytes: &'b [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize, section: &'static str) -> Result<&'b [u8], SnapshotError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or(SnapshotError::Truncated { section })?;
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u16(&mut self, section: &'static str) -> Result<u16, SnapshotError> {
        Ok(u16::from_le_bytes(
            self.take(2, section)?.try_into().expect("2 bytes"),
        ))
    }

    fn u32(&mut self, section: &'static str) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(
            self.take(4, section)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self, section: &'static str) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(
            self.take(8, section)?.try_into().expect("8 bytes"),
        ))
    }

    fn u128(&mut self, section: &'static str) -> Result<u128, SnapshotError> {
        Ok(u128::from_le_bytes(
            self.take(16, section)?.try_into().expect("16 bytes"),
        ))
    }

    fn done(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

/// Decodes the common header; returns the kind byte and a reader
/// positioned at the first section, plus the section count.
fn decode_header(bytes: &[u8]) -> Result<(u8, u32, Reader<'_>), SnapshotError> {
    let mut r = Reader::new(bytes);
    if r.take(4, "header").map_err(|_| SnapshotError::BadMagic)? != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = r.u16("header")?;
    if version != VERSION {
        return Err(SnapshotError::UnsupportedVersion {
            found: version,
            supported: VERSION,
        });
    }
    let endian = r.take(1, "header")?[0];
    if endian != LITTLE_ENDIAN {
        return Err(SnapshotError::Corrupt(format!(
            "unknown endianness marker 0x{endian:02x}"
        )));
    }
    let kind = r.take(1, "header")?[0];
    let sections = r.u32("header")?;
    Ok((kind, sections, r))
}

fn expect_kind(found: u8, want: u8) -> Result<(), SnapshotError> {
    if found == want {
        return Ok(());
    }
    let describe = |k: u8| match k {
        KIND_SESSION => "a session snapshot".to_string(),
        KIND_CLUSTER => "a cluster snapshot".to_string(),
        other => format!("an unknown snapshot kind 0x{other:02x}"),
    };
    Err(SnapshotError::Corrupt(format!(
        "expected {}, found {}",
        describe(want),
        describe(found)
    )))
}

fn decode_key(bytes: &[u8], section: &'static str) -> Result<KernelKey, SnapshotError> {
    let arr: &[u8; KernelKey::ENCODED_LEN] = bytes
        .try_into()
        .map_err(|_| SnapshotError::Truncated { section })?;
    KernelKey::from_bytes(arr)
        .ok_or_else(|| SnapshotError::Corrupt(format!("unknown kernel-key encoding in {section}")))
}

/// Decodes `SNAP_V1` session bytes into a [`SessionImage`]. Unknown
/// section tags are skipped (additive forward compatibility); missing
/// known sections are an error.
pub(crate) fn decode_session(bytes: &[u8]) -> Result<SessionImage, SnapshotError> {
    let (kind, sections, mut r) = decode_header(bytes)?;
    expect_kind(kind, KIND_SESSION)?;

    let mut meta: Option<[u64; 6]> = None;
    let mut vdm: Option<Vec<u128>> = None;
    let mut sdm: Option<Vec<u128>> = None;
    let mut heap: Option<(LiveBlocks, FreeBlocks)> = None;
    let mut keys: Option<Vec<KernelKey>> = None;
    let mut loaded: Option<Option<KernelKey>> = None;

    for _ in 0..sections {
        let tag: [u8; 4] = r.take(4, "section tag")?.try_into().expect("4 bytes");
        let len = r.u64("section length")?;
        let len: usize = len
            .try_into()
            .map_err(|_| SnapshotError::Corrupt("section length overflows usize".into()))?;
        let payload = r.take(len, "section payload")?;
        let mut p = Reader::new(payload);
        match &tag {
            b"META" => {
                let mut fields = [0u64; 6];
                for f in &mut fields {
                    *f = p.u64("META")?;
                }
                meta = Some(fields);
            }
            b"VDM " => {
                if payload.len() % 16 != 0 {
                    return Err(SnapshotError::Corrupt(
                        "VDM section not element-sized".into(),
                    ));
                }
                let mut elems = Vec::with_capacity(payload.len() / 16);
                while !p.done() {
                    elems.push(p.u128("VDM")?);
                }
                vdm = Some(elems);
            }
            b"SDM " => {
                if payload.len() % 16 != 0 {
                    return Err(SnapshotError::Corrupt(
                        "SDM section not element-sized".into(),
                    ));
                }
                let mut elems = Vec::with_capacity(payload.len() / 16);
                while !p.done() {
                    elems.push(p.u128("SDM")?);
                }
                sdm = Some(elems);
            }
            b"HEAP" => {
                let live_count = p.u64("HEAP")?;
                let mut live = Vec::new();
                for _ in 0..live_count {
                    live.push((p.u64("HEAP")?, p.u64("HEAP")?, p.u64("HEAP")?));
                }
                let free_count = p.u64("HEAP")?;
                let mut free = Vec::new();
                for _ in 0..free_count {
                    free.push((p.u64("HEAP")?, p.u64("HEAP")?));
                }
                if !p.done() {
                    return Err(SnapshotError::Corrupt(
                        "HEAP section has trailing bytes".into(),
                    ));
                }
                heap = Some((live, free));
            }
            b"KEYS" => {
                let count = p.u64("KEYS")?;
                let mut out = Vec::new();
                for _ in 0..count {
                    out.push(decode_key(p.take(KernelKey::ENCODED_LEN, "KEYS")?, "KEYS")?);
                }
                if !p.done() {
                    return Err(SnapshotError::Corrupt(
                        "KEYS section has trailing bytes".into(),
                    ));
                }
                keys = Some(out);
            }
            b"LODK" => {
                let flag = p.take(1, "LODK")?[0];
                loaded = Some(match flag {
                    0 => None,
                    1 => Some(decode_key(p.take(KernelKey::ENCODED_LEN, "LODK")?, "LODK")?),
                    other => {
                        return Err(SnapshotError::Corrupt(format!(
                            "LODK flag must be 0 or 1, got {other}"
                        )))
                    }
                });
            }
            // Unknown tags are future additive sections: skip.
            _ => {}
        }
    }
    if !r.done() {
        return Err(SnapshotError::Corrupt(
            "trailing bytes after the last section".into(),
        ));
    }

    let meta = meta.ok_or_else(|| SnapshotError::Corrupt("missing META section".into()))?;
    let vdm = vdm.ok_or_else(|| SnapshotError::Corrupt("missing VDM section".into()))?;
    let sdm = sdm.ok_or_else(|| SnapshotError::Corrupt("missing SDM section".into()))?;
    let (live, free) = heap.ok_or_else(|| SnapshotError::Corrupt("missing HEAP section".into()))?;
    let keys = keys.ok_or_else(|| SnapshotError::Corrupt("missing KEYS section".into()))?;
    let loaded = loaded.ok_or_else(|| SnapshotError::Corrupt("missing LODK section".into()))?;
    let [workspace, heap_base, heap_capacity, high_water, vdm_len, sdm_len] = meta;
    if vdm.len() as u64 != vdm_len {
        return Err(SnapshotError::Corrupt(format!(
            "META says {vdm_len} VDM elements but the VDM section holds {}",
            vdm.len()
        )));
    }
    if sdm.len() as u64 != sdm_len {
        return Err(SnapshotError::Corrupt(format!(
            "META says {sdm_len} SDM elements but the SDM section holds {}",
            sdm.len()
        )));
    }
    Ok(SessionImage {
        workspace,
        heap_base,
        heap_capacity,
        high_water,
        vdm,
        sdm,
        live,
        free,
        keys,
        loaded,
    })
}

/// Decodes `SNAP_V1` cluster bytes into the placement map and the raw
/// per-lane session snapshots (still encoded; the session layer decodes
/// and applies each).
pub(crate) fn decode_cluster(bytes: &[u8]) -> Result<(OwnerMap, Vec<Vec<u8>>), SnapshotError> {
    let (kind, sections, mut r) = decode_header(bytes)?;
    expect_kind(kind, KIND_CLUSTER)?;
    let mut owners: Option<OwnerMap> = None;
    let mut lanes: Vec<Vec<u8>> = Vec::new();
    for _ in 0..sections {
        let tag: [u8; 4] = r.take(4, "section tag")?.try_into().expect("4 bytes");
        let len = r.u64("section length")?;
        let len: usize = len
            .try_into()
            .map_err(|_| SnapshotError::Corrupt("section length overflows usize".into()))?;
        let payload = r.take(len, "section payload")?;
        match &tag {
            b"OWNR" => {
                let mut p = Reader::new(payload);
                let count = p.u64("OWNR")?;
                let mut out = Vec::new();
                for _ in 0..count {
                    out.push((p.u64("OWNR")?, p.u64("OWNR")?));
                }
                if !p.done() {
                    return Err(SnapshotError::Corrupt(
                        "OWNR section has trailing bytes".into(),
                    ));
                }
                owners = Some(out);
            }
            b"LANE" => lanes.push(payload.to_vec()),
            _ => {}
        }
    }
    if !r.done() {
        return Err(SnapshotError::Corrupt(
            "trailing bytes after the last section".into(),
        ));
    }
    let owners = owners.ok_or_else(|| SnapshotError::Corrupt("missing OWNR section".into()))?;
    Ok((owners, lanes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpu_codegen::{CodegenStyle, Direction, KernelOp};

    fn image() -> SessionImage {
        SessionImage {
            workspace: 100,
            heap_base: 100,
            heap_capacity: 50,
            high_water: 30,
            vdm: vec![1, 2, 3],
            sdm: vec![4, 5],
            live: vec![(7, 100, 10), (9, 110, 20)],
            free: vec![(130, 20)],
            keys: vec![KernelKey {
                op: KernelOp::Ntt,
                n: 1024,
                q: 12289,
                direction: Direction::Forward,
                style: CodegenStyle::Optimized,
                param: 0,
            }],
            loaded: None,
        }
    }

    #[test]
    fn session_round_trip() {
        let img = image();
        let bytes = encode_session(&img);
        assert_eq!(decode_session(&bytes).unwrap(), img);
    }

    #[test]
    fn cluster_round_trip() {
        let lane = encode_session(&image());
        let bytes = encode_cluster(&[(7, 0), (9, 1)], &[lane.clone(), lane.clone()]);
        let (owners, lanes) = decode_cluster(&bytes).unwrap();
        assert_eq!(owners, vec![(7, 0), (9, 1)]);
        assert_eq!(lanes, vec![lane.clone(), lane]);
    }

    #[test]
    fn bad_magic_truncation_and_future_version_are_typed() {
        let bytes = encode_session(&image());
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert_eq!(decode_session(&bad).unwrap_err(), SnapshotError::BadMagic);
        let mut future = bytes.clone();
        future[4..6].copy_from_slice(&2u16.to_le_bytes());
        assert_eq!(
            decode_session(&future).unwrap_err(),
            SnapshotError::UnsupportedVersion {
                found: 2,
                supported: 1
            }
        );
        for cut in [0, 3, 7, 11, bytes.len() - 1] {
            let err = decode_session(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    SnapshotError::Truncated { .. } | SnapshotError::BadMagic
                ),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn unknown_sections_are_skipped() {
        let img = image();
        let mut bytes = encode_session(&img);
        // Append a future additive section and patch the count.
        push_section(&mut bytes, b"XTRA", &[1, 2, 3]);
        let count = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) + 1;
        bytes[8..12].copy_from_slice(&count.to_le_bytes());
        assert_eq!(decode_session(&bytes).unwrap(), img);
    }

    #[test]
    fn kind_mismatch_is_corrupt() {
        let session = encode_session(&image());
        assert!(matches!(
            decode_cluster(&session).unwrap_err(),
            SnapshotError::Corrupt(_)
        ));
        let cluster = encode_cluster(&[], &[]);
        assert!(matches!(
            decode_session(&cluster).unwrap_err(),
            SnapshotError::Corrupt(_)
        ));
    }
}
