//! Multi-lane RNS execution: [`RpuCluster`] and [`RnsExecutor`].
//!
//! The paper's central observation (Section II-B) is that a
//! wide-coefficient ring operation decomposes into **independent** RNS
//! towers — "during polynomial multiplication, each tower operates
//! independently" — so towers are the natural unit for scaling *out* as
//! well as up. This module adds that scale-out layer:
//!
//! * [`RpuCluster`] — `k` independent lanes over one [`Rpu`]
//!   configuration. Each lane is a full [`RpuSession`]: its own device
//!   heap, kernel cache, and functional simulator, modeling `k` RPU dies
//!   fed by one host. Lanes share the cluster's [`PrimeTable`], and the
//!   cluster tracks which lane every buffer lives on so a handle used on
//!   the wrong lane fails fast ([`BufferError::ForeignLane`]) instead of
//!   corrupting a foreign heap.
//! * [`RnsExecutor`] — shards an RNS-decomposed workload (tower-major
//!   residue vectors, [`RnsPolynomial`] towers) across the lanes with a
//!   work-stealing scheduler: tower jobs go into one shared queue and
//!   every lane runs on its own OS thread, pulling the next tower the
//!   moment it finishes the last — so lanes never idle while work
//!   remains, whatever the tower/lane ratio. Results are CRT-recombined
//!   on the host.
//!
//! ```
//! use rpu::{RnsExecutor, Rpu};
//! use rpu::arith::{find_ntt_prime_chain, RnsBasis};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let rpu = Rpu::builder().lanes(2).build()?;
//! let mut exec = RnsExecutor::new(rpu.cluster());
//! let n = 1024;
//! let primes = find_ntt_prime_chain(60, 2 * n as u128, 4);
//! let basis = RnsBasis::new(primes.clone())?;
//! let a = basis.split_u128_poly(&vec![3u128; n]);
//! let b = basis.split_u128_poly(&vec![5u128; n]);
//! let (towers, report) = exec.negacyclic_mul_towers(n, &primes, &a, &b)?;
//! assert_eq!(towers.len(), 4);
//! assert!(report.speedup() > 1.0); // 4 towers over 2 lanes overlap
//! # Ok(())
//! # }
//! ```

use crate::buffer::{BufferError, DeviceBuffer, TransferStats};
use crate::run::{Rpu, RunReport};
use crate::session::{CacheStats, PrimeTable, RpuSession};
use crate::snapshot::{self, SnapshotError};
use crate::trace::DispatchEvent;
use crate::RpuError;
use rpu_codegen::{CodegenStyle, ConvolutionSpec, Kernel, KernelSpec};
use rpu_ntt::{RnsContext, RnsPolynomial};
use std::any::Any;
use std::collections::{HashMap, VecDeque};
use std::panic::AssertUnwindSafe;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// One lane: a session plus its lifetime dispatch accounting.
#[derive(Debug)]
struct Lane<'a> {
    session: RpuSession<'a>,
    dispatches: u64,
    cycles: u64,
    busy_us: f64,
    /// Jobs this lane executed through a worker pool.
    jobs: u64,
    /// Host wall-clock spent *executing* pool jobs on this lane, in
    /// microseconds (excludes time parked waiting for work).
    wall_busy_us: f64,
    transfer: TransferStats,
}

impl<'a> Lane<'a> {
    fn new(rpu: &'a Rpu, index: usize) -> Self {
        let mut session = rpu.session();
        session.set_lane(index);
        Lane {
            session,
            dispatches: 0,
            cycles: 0,
            busy_us: 0.0,
            jobs: 0,
            wall_busy_us: 0.0,
            transfer: TransferStats::default(),
        }
    }

    /// Folds one dispatch report into the lane's running totals.
    fn account(&mut self, report: &RunReport) {
        self.dispatches += 1;
        self.cycles += report.stats.cycles;
        self.busy_us += report.runtime_us;
        self.transfer.absorb(&report.transfer);
    }
}

/// One generic unit of work for [`RpuCluster::run_jobs`]: runs on
/// whichever lane steals it, driving that lane through the
/// [`LaneWorker`] it is handed.
pub type LaneJob<'j, T> =
    Box<dyn FnOnce(&mut LaneWorker<'_, '_>) -> Result<T, RpuError> + Send + 'j>;

/// A lane as seen from inside a work-stealing job: the lane's session
/// plus per-lane accounting, so everything a job uploads, dispatches,
/// and downloads lands in that lane's [`LaneStats`] (and therefore in
/// the run's [`ClusterRunReport`]).
#[derive(Debug)]
pub struct LaneWorker<'l, 'a> {
    index: usize,
    lane: &'l mut Lane<'a>,
}

impl<'l, 'a> LaneWorker<'l, 'a> {
    /// The lane this worker drives (jobs use it to pick lane-resident
    /// key material, kernels, or accumulators out of per-lane tables).
    pub fn lane_index(&self) -> usize {
        self.index
    }

    /// Raw access to the lane's session — traffic through it bypasses
    /// the per-lane transfer accounting (dispatch accounting still
    /// happens inside the session's reports only). Prefer the worker's
    /// own methods.
    pub fn session(&mut self) -> &mut RpuSession<'a> {
        &mut self.lane.session
    }

    /// Compiles (or recalls) `spec` on this lane's kernel cache.
    ///
    /// # Errors
    ///
    /// Returns [`RpuError`] if generation fails or verification faults.
    pub fn compile<S: KernelSpec + ?Sized>(&mut self, spec: &S) -> Result<Arc<Kernel>, RpuError> {
        self.lane.session.compile(spec)
    }

    /// Uploads `data` into a fresh lane-local buffer, with accounting.
    ///
    /// # Errors
    ///
    /// Returns [`RpuError::Buffer`] when the lane's heap is exhausted.
    pub fn upload(&mut self, data: &[u128]) -> Result<DeviceBuffer, RpuError> {
        let buf = self.lane.session.upload(data)?;
        self.lane.transfer.host_to_device += data.len();
        Ok(buf)
    }

    /// Allocates `len` elements on this lane.
    ///
    /// # Errors
    ///
    /// Returns [`RpuError::Buffer`] when the lane's heap is exhausted.
    pub fn alloc(&mut self, len: usize) -> Result<DeviceBuffer, RpuError> {
        self.lane.session.alloc(len)
    }

    /// Downloads a lane-local buffer, with accounting.
    ///
    /// # Errors
    ///
    /// Returns [`RpuError::Buffer`] for stale handles.
    pub fn download(&mut self, buf: &DeviceBuffer) -> Result<Vec<u128>, RpuError> {
        let data = self.lane.session.download(buf)?;
        self.lane.transfer.device_to_host += data.len();
        Ok(data)
    }

    /// Frees a lane-local buffer.
    ///
    /// # Errors
    ///
    /// Returns [`RpuError::Buffer`] for stale handles.
    pub fn free(&mut self, buf: DeviceBuffer) -> Result<(), RpuError> {
        self.lane.session.free(buf)
    }

    /// Dispatches a compiled kernel over this lane's resident buffers,
    /// folding the report into the lane's accounting.
    ///
    /// # Errors
    ///
    /// Returns [`RpuError::Buffer`] for stale handles or shape
    /// mismatches, [`RpuError::Exec`] if the program faults.
    pub fn dispatch(
        &mut self,
        kernel: &Arc<Kernel>,
        inputs: &[DeviceBuffer],
        outputs: &[DeviceBuffer],
    ) -> Result<RunReport, RpuError> {
        let report = self.lane.session.dispatch(kernel, inputs, outputs)?;
        self.lane.account(&report);
        Ok(report)
    }

    /// Uploads, dispatches the tower's fused convolution, downloads, and
    /// frees — one complete tower job, entirely lane-local.
    fn run_tower(
        &mut self,
        n: usize,
        q: u128,
        a: &[u128],
        b: &[u128],
        style: CodegenStyle,
    ) -> Result<Vec<u128>, RpuError> {
        let kernel = self.compile(&ConvolutionSpec::new(n, q, style))?;
        let mut held: Vec<DeviceBuffer> = Vec::with_capacity(3);
        let result = (|| {
            let da = self.upload(a)?;
            held.push(da);
            let db = self.upload(b)?;
            held.push(db);
            let dc = self.alloc(n)?;
            held.push(dc);
            self.dispatch(&kernel, &[da, db], &[dc])?;
            self.download(&dc)
        })();
        // Tower buffers never outlive the job, success or not.
        for buf in held {
            let _ = self.lane.session.free(buf);
        }
        result
    }
}

/// A snapshot of one lane's accounting: how much work it has absorbed
/// and what data movement that cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaneStats {
    /// The lane index.
    pub lane: usize,
    /// Kernels dispatched on this lane.
    pub dispatches: u64,
    /// Total simulated cycles across those dispatches.
    pub cycles: u64,
    /// Total simulated on-RPU time, in microseconds.
    pub busy_us: f64,
    /// Pool jobs executed on this lane ([`RpuCluster::run_jobs`] /
    /// [`RpuCluster::with_workers`]); direct `dispatch_on` traffic does
    /// not count as a job.
    pub jobs: u64,
    /// Host wall-clock spent executing pool jobs on this lane, in
    /// microseconds — the lane's *occupancy*, as opposed to `busy_us`
    /// which is simulated device time. Time parked waiting for work is
    /// excluded, so `wall_busy_us / report.wall_us` is the lane's
    /// utilization over a run.
    pub wall_busy_us: f64,
    /// Aggregated data movement (uploads, downloads, on-device copies).
    pub transfer: TransferStats,
}

impl LaneStats {
    /// The per-lane delta `after - before` (what one sharded run added).
    fn delta(after: &LaneStats, before: &LaneStats) -> LaneStats {
        let dispatches = after.dispatches - before.dispatches;
        let image_elements = after.transfer.image_elements - before.transfer.image_elements;
        LaneStats {
            lane: after.lane,
            dispatches,
            cycles: after.cycles - before.cycles,
            busy_us: after.busy_us - before.busy_us,
            jobs: after.jobs - before.jobs,
            wall_busy_us: after.wall_busy_us - before.wall_busy_us,
            transfer: TransferStats {
                host_to_device: after.transfer.host_to_device - before.transfer.host_to_device,
                device_to_host: after.transfer.device_to_host - before.transfer.device_to_host,
                device_copies: after.transfer.device_copies - before.transfer.device_copies,
                image_elements,
                // This run reused resident images iff it dispatched
                // without writing any new constant image (the lane's
                // lifetime flag would leak earlier runs' reuse).
                image_reused: dispatches > 0 && image_elements == 0,
            },
        }
    }
}

/// The aggregated report of one sharded run: per-lane statistics plus
/// the makespan/sequential comparison that quantifies the overlap.
#[derive(Debug, Clone)]
pub struct ClusterRunReport {
    /// Towers (independent jobs) executed.
    pub towers: usize,
    /// Lanes in the cluster (idle lanes included).
    pub lanes: usize,
    /// What each lane contributed to *this* run.
    pub per_lane: Vec<LaneStats>,
    /// Simulated completion time: the busiest lane's on-RPU time, in
    /// microseconds — what a `k`-die deployment would take.
    pub makespan_us: f64,
    /// Simulated time of the same towers run back-to-back through one
    /// session, in microseconds (the sum over all lanes).
    pub sequential_us: f64,
    /// Total simulated cycles across every lane.
    pub total_cycles: u64,
    /// Data movement summed over every lane.
    pub transfer: TransferStats,
    /// Host wall-clock of the sharded run, in microseconds (the lanes'
    /// functional simulators really do run on parallel OS threads).
    pub wall_us: f64,
    /// High-water mark of the pool's pending-job queues over the run
    /// (pinned + shared, jobs submitted but not yet started) — how deep
    /// the backlog got, the number a serving scheduler watches.
    pub queue_peak: usize,
    /// The structured dispatch events this run recorded, in dispatch
    /// order — empty unless a sink was installed via
    /// [`RpuBuilder::trace`](crate::RpuBuilder::trace) (and the sink
    /// retains events).
    pub trace: Vec<DispatchEvent>,
}

impl ClusterRunReport {
    /// Simulated throughput gain of the sharded run over the sequential
    /// single-session loop (`sequential_us / makespan_us`; 1.0 for one
    /// lane, approaching the lane count as towers balance).
    pub fn speedup(&self) -> f64 {
        if self.makespan_us > 0.0 {
            self.sequential_us / self.makespan_us
        } else {
            1.0
        }
    }

    /// Lanes that executed at least one tower of this run.
    pub fn lanes_used(&self) -> usize {
        self.per_lane.iter().filter(|l| l.dispatches > 0).count()
    }
}

/// One unit of work for a persistent [`LanePool`]: it runs on a worker
/// thread, driving whichever lane it lands on through the
/// [`LaneWorker`] it is handed. Pool jobs carry no return channel —
/// callers thread results out through whatever shared state the closure
/// captures (a ticket cell, a `Mutex<Vec<_>>` slot, a condvar).
pub type PoolJob<'j> = Box<dyn FnOnce(&mut LaneWorker<'_, '_>) + Send + 'j>;

/// Everything the pool's mutex guards: the queues plus the counters the
/// scheduler and the report read from one place.
struct PoolState<'j> {
    /// Lane-affine queues: jobs that must run on one particular lane, in
    /// submission order (lane-resident ciphertexts, ordered frees).
    pinned: Vec<VecDeque<PoolJob<'j>>>,
    /// The work-stealing queue: any lane takes the next job the moment
    /// it goes idle.
    shared: VecDeque<PoolJob<'j>>,
    /// Still accepting work; flips when the owning scope shuts down, at
    /// which point workers drain what is queued and exit.
    open: bool,
    /// Jobs currently executing on some worker.
    active: usize,
    /// Jobs submitted but not yet started (pinned + shared).
    pending: usize,
    /// Jobs finished — successfully or by caught panic — over the
    /// pool's lifetime.
    executed: usize,
    /// High-water mark of `pending`.
    depth_peak: usize,
    /// First caught job panic, as `(lane, message)`.
    panic: Option<(usize, String)>,
}

impl std::fmt::Debug for PoolState<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolState")
            .field(
                "pinned",
                &self.pinned.iter().map(VecDeque::len).collect::<Vec<_>>(),
            )
            .field("shared", &self.shared.len())
            .field("open", &self.open)
            .field("active", &self.active)
            .field("pending", &self.pending)
            .field("executed", &self.executed)
            .field("depth_peak", &self.depth_peak)
            .field("panic", &self.panic)
            .finish()
    }
}

/// A persistent per-lane worker pool over an [`RpuCluster`], created by
/// [`RpuCluster::with_workers`]. One OS thread per lane stays parked on
/// the pool for the scope's lifetime; callers feed it two kinds of work:
///
/// * [`submit`](LanePool::submit) — any-lane jobs, work-stealing: the
///   next idle lane takes the next job, so throughput work balances
///   itself whatever the job/lane ratio;
/// * [`submit_to`](LanePool::submit_to) — lane-pinned jobs, FIFO per
///   lane: for work that must touch one lane's resident state (a
///   tenant's home-lane ciphertexts, an ordered teardown).
///
/// The pool is `Sync`: many client threads may submit concurrently
/// while the workers drain. A job that panics is caught on its worker
/// thread and recorded ([`panicked`](LanePool::panicked)); the pool
/// keeps draining — long-lived callers decide whether that is fatal.
#[derive(Debug)]
pub struct LanePool<'j> {
    lanes: usize,
    queues: Mutex<PoolState<'j>>,
    /// Signals workers: new work, or shutdown.
    work: Condvar,
    /// Signals waiters: the pool just went idle.
    idle: Condvar,
}

impl<'j> LanePool<'j> {
    fn new(lanes: usize) -> Self {
        LanePool {
            lanes,
            queues: Mutex::new(PoolState {
                pinned: (0..lanes).map(|_| VecDeque::new()).collect(),
                shared: VecDeque::new(),
                open: true,
                active: 0,
                pending: 0,
                executed: 0,
                depth_peak: 0,
                panic: None,
            }),
            work: Condvar::new(),
            idle: Condvar::new(),
        }
    }

    /// Number of lanes (worker threads) feeding from this pool.
    pub fn lane_count(&self) -> usize {
        self.lanes
    }

    /// Submits a job any lane may steal.
    ///
    /// # Panics
    ///
    /// Panics if the pool has already shut down (impossible through
    /// [`RpuCluster::with_workers`], which closes the pool only after
    /// the caller's closure returns).
    pub fn submit(&self, job: PoolJob<'j>) {
        self.push(None, job);
    }

    /// Submits a job pinned to `lane`: it runs there and nowhere else,
    /// after every pinned job submitted to that lane before it.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range or the pool has shut down.
    pub fn submit_to(&self, lane: usize, job: PoolJob<'j>) {
        assert!(
            lane < self.lanes,
            "pinned submit to lane {lane} of a {}-lane pool",
            self.lanes
        );
        self.push(Some(lane), job);
    }

    fn push(&self, lane: Option<usize>, job: PoolJob<'j>) {
        let mut q = self.queues.lock().expect("not poisoned");
        assert!(q.open, "job submitted to a closed pool");
        match lane {
            Some(l) => q.pinned[l].push_back(job),
            None => q.shared.push_back(job),
        }
        q.pending += 1;
        if q.pending > q.depth_peak {
            q.depth_peak = q.pending;
        }
        drop(q);
        // Pinned work must reach one specific parked worker, and the
        // condvar cannot aim — wake them all, the others re-park.
        self.work.notify_all();
    }

    /// Blocks until every job submitted so far has finished.
    pub fn wait_idle(&self) {
        let mut q = self.queues.lock().expect("not poisoned");
        while q.pending > 0 || q.active > 0 {
            q = self.idle.wait(q).expect("not poisoned");
        }
    }

    /// Jobs submitted but not yet started (pinned + shared).
    pub fn queued(&self) -> usize {
        self.queues.lock().expect("not poisoned").pending
    }

    /// Jobs finished over the pool's lifetime.
    pub fn executed(&self) -> usize {
        self.queues.lock().expect("not poisoned").executed
    }

    /// High-water mark of the pending-job backlog so far.
    pub fn queue_peak(&self) -> usize {
        self.queues.lock().expect("not poisoned").depth_peak
    }

    /// The first job panic the pool caught, as `(lane, message)` — the
    /// pool keeps draining after a panic, so check this where a panic
    /// must be fatal ([`RpuCluster::run_jobs`] turns it into
    /// [`RpuError::LanePanic`]).
    pub fn panicked(&self) -> Option<(usize, String)> {
        self.queues.lock().expect("not poisoned").panic.clone()
    }

    /// Worker side: the next job for `lane` (its pinned queue first,
    /// then the shared queue), parking until one arrives. `None` means
    /// the pool shut down and drained — the worker loop exits.
    fn next_job(&self, lane: usize) -> Option<PoolJob<'j>> {
        let mut q = self.queues.lock().expect("not poisoned");
        loop {
            let job = match q.pinned[lane].pop_front() {
                Some(j) => Some(j),
                None => q.shared.pop_front(),
            };
            if let Some(job) = job {
                q.pending -= 1;
                q.active += 1;
                return Some(job);
            }
            if !q.open {
                return None;
            }
            q = self.work.wait(q).expect("not poisoned");
        }
    }

    /// Worker side: accounts a finished job (and its panic, if caught).
    fn finish(&self, lane: usize, panic: Option<Box<dyn Any + Send>>) {
        let mut q = self.queues.lock().expect("not poisoned");
        q.active -= 1;
        q.executed += 1;
        if let Some(payload) = panic {
            if q.panic.is_none() {
                q.panic = Some((lane, panic_message(payload.as_ref())));
            }
        }
        if q.pending == 0 && q.active == 0 {
            drop(q);
            self.idle.notify_all();
        }
    }

    /// Stops accepting work and wakes every parked worker; they drain
    /// what is already queued, then exit.
    fn close(&self) {
        let mut q = self.queues.lock().expect("not poisoned");
        q.open = false;
        drop(q);
        self.work.notify_all();
    }
}

/// Closes the pool even if the caller's closure unwinds — parked
/// workers would otherwise never observe shutdown and the owning thread
/// scope would join forever.
struct PoolCloseGuard<'p, 'j>(&'p LanePool<'j>);

impl Drop for PoolCloseGuard<'_, '_> {
    fn drop(&mut self) {
        self.0.close();
    }
}

/// Best-effort text out of a caught panic payload.
fn panic_message(payload: &(dyn Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "lane job panicked".into())
}

/// `k` independent RPU lanes behind one host: each lane owns a full
/// [`RpuSession`] (device heap + kernel cache + functional simulator),
/// the cluster owns the shared [`PrimeTable`] and the buffer → lane
/// placement map.
///
/// Created by [`Rpu::cluster`] (the [`RpuBuilder::lanes`] count) or
/// [`Rpu::cluster_with`] (explicit count). Lanes are separate devices:
/// buffers never travel between them, and the cluster rejects a handle
/// used on the wrong lane with [`BufferError::ForeignLane`] before it
/// can touch a foreign heap.
///
/// [`RpuBuilder::lanes`]: crate::RpuBuilder::lanes
#[derive(Debug)]
pub struct RpuCluster<'a> {
    rpu: &'a Rpu,
    lanes: Vec<Lane<'a>>,
    primes: PrimeTable,
    /// Buffer id → owning lane, for every buffer created through the
    /// cluster API (lane-session buffers made directly through
    /// [`RpuCluster::lane_session`] are validated by the session itself).
    owners: HashMap<u64, usize>,
}

impl<'a> RpuCluster<'a> {
    /// Builds a `k`-lane cluster (used by [`Rpu::cluster`] /
    /// [`Rpu::cluster_with`]).
    ///
    /// # Panics
    ///
    /// Panics if `k` is outside `[1, 64]` — the same bound
    /// [`RpuBuilder::lanes`](crate::RpuBuilder::lanes) enforces as a
    /// build error.
    pub(crate) fn new(rpu: &'a Rpu, k: usize) -> Self {
        assert!(
            (1..=crate::session::MAX_LANES).contains(&k),
            "cluster lane count must be in [1, {}], got {k}",
            crate::session::MAX_LANES
        );
        RpuCluster {
            rpu,
            lanes: (0..k).map(|index| Lane::new(rpu, index)).collect(),
            primes: PrimeTable::with_bits(rpu.prime_bits()),
            owners: HashMap::new(),
        }
    }

    /// The RPU configuration every lane instantiates.
    pub fn rpu(&self) -> &Rpu {
        self.rpu
    }

    /// Number of lanes.
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// The cluster-shared NTT prime for ring degree `n` — one search,
    /// whatever the lane count.
    ///
    /// # Errors
    ///
    /// Returns [`RpuError::NoPrime`] if no such prime exists.
    pub fn primes_for(&mut self, n: usize) -> Result<u128, RpuError> {
        self.primes.ntt_prime(n)
    }

    /// Direct access to one lane's session (buffers created this way are
    /// still lane-validated, but not tracked in the placement map).
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn lane_session(&mut self, lane: usize) -> &mut RpuSession<'a> {
        &mut self.lanes[lane].session
    }

    /// The lane a cluster-tracked buffer lives on, probing the lane
    /// heaps for untracked (session-created) handles.
    pub fn locate(&self, buf: &DeviceBuffer) -> Option<usize> {
        self.owners
            .get(&buf.id())
            .copied()
            .or_else(|| self.lanes.iter().position(|lane| lane.session.owns(buf)))
    }

    /// Rejects buffers that are known to live on a different lane.
    pub(crate) fn check_residency(
        &self,
        lane: usize,
        bufs: &[DeviceBuffer],
    ) -> Result<(), RpuError> {
        for buf in bufs {
            if let Some(owner) = self.locate(buf) {
                if owner != lane {
                    return Err(BufferError::ForeignLane {
                        id: buf.id(),
                        owner,
                        used_on: lane,
                    }
                    .into());
                }
            }
        }
        Ok(())
    }

    /// Allocates `len` elements on `lane`.
    ///
    /// # Errors
    ///
    /// Returns [`RpuError::Buffer`] when the lane's heap is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn alloc_on(&mut self, lane: usize, len: usize) -> Result<DeviceBuffer, RpuError> {
        let buf = self.lanes[lane].session.alloc(len)?;
        self.owners.insert(buf.id(), lane);
        Ok(buf)
    }

    /// Uploads `data` into a fresh buffer on `lane`.
    ///
    /// # Errors
    ///
    /// Returns [`RpuError::Buffer`] when the lane's heap is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn upload_to(&mut self, lane: usize, data: &[u128]) -> Result<DeviceBuffer, RpuError> {
        let l = &mut self.lanes[lane];
        let buf = l.session.upload(data)?;
        l.transfer.host_to_device += data.len();
        self.owners.insert(buf.id(), lane);
        Ok(buf)
    }

    /// Downloads a buffer from whichever lane owns it.
    ///
    /// # Errors
    ///
    /// Returns [`RpuError::Buffer`] for stale handles.
    pub fn download(&mut self, buf: &DeviceBuffer) -> Result<Vec<u128>, RpuError> {
        let lane = self
            .locate(buf)
            .ok_or(RpuError::Buffer(BufferError::StaleHandle { id: buf.id() }))?;
        let l = &mut self.lanes[lane];
        let data = l.session.download(buf)?;
        l.transfer.device_to_host += data.len();
        Ok(data)
    }

    /// Frees a buffer on whichever lane owns it.
    ///
    /// # Errors
    ///
    /// Returns [`RpuError::Buffer`] for stale handles (double frees
    /// included).
    pub fn free(&mut self, buf: DeviceBuffer) -> Result<(), RpuError> {
        let lane = self
            .locate(&buf)
            .ok_or(RpuError::Buffer(BufferError::StaleHandle { id: buf.id() }))?;
        self.lanes[lane].session.free(buf)?;
        self.owners.remove(&buf.id());
        Ok(())
    }

    /// Moves a buffer to another lane through the host link (lanes share
    /// no memory, so this is a download + upload + free), returning the
    /// new handle. A no-op move (same lane) returns the original handle.
    ///
    /// The move is **failure-atomic**: the source is freed only after
    /// the destination copy exists, so when the destination lane's
    /// allocation fails (heap exhausted) the source stays live and
    /// downloadable with its placement-map entry intact — nothing leaks
    /// and nothing half-moves. If freeing the source somehow fails, the
    /// destination copy is rolled back before the error propagates.
    ///
    /// # Errors
    ///
    /// Returns [`RpuError::Buffer`] for stale handles or an exhausted
    /// target heap.
    ///
    /// # Panics
    ///
    /// Panics if `to` is out of range.
    pub fn migrate(&mut self, buf: DeviceBuffer, to: usize) -> Result<DeviceBuffer, RpuError> {
        let from = self
            .locate(&buf)
            .ok_or(RpuError::Buffer(BufferError::StaleHandle { id: buf.id() }))?;
        if from == to {
            return Ok(buf);
        }
        let data = self.download(&buf)?;
        let moved = self.upload_to(to, &data)?;
        if let Err(e) = self.free(buf) {
            // Never leak the copy when the source release fails: roll
            // the destination back and surface the original error.
            let _ = self.free(moved);
            return Err(e);
        }
        Ok(moved)
    }

    /// Copies a buffer to another lane over the host link **without**
    /// freeing the source — the replication primitive ciphertext
    /// operations use when both lanes need the same operand (lanes share
    /// no memory). Same-lane replication produces an independent copy.
    ///
    /// # Errors
    ///
    /// Returns [`RpuError::Buffer`] for stale handles or an exhausted
    /// target heap.
    ///
    /// # Panics
    ///
    /// Panics if `to` is out of range.
    pub fn replicate(&mut self, buf: &DeviceBuffer, to: usize) -> Result<DeviceBuffer, RpuError> {
        let data = self.download(buf)?;
        self.upload_to(to, &data)
    }

    /// Compiles (or recalls) `spec` on `lane`'s kernel cache, verifying
    /// it once against the golden model — lane caches are independent,
    /// exactly as `k` devices each holding their own program store.
    ///
    /// # Errors
    ///
    /// Returns [`RpuError`] if generation fails or verification faults.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn compile_on<S: KernelSpec + ?Sized>(
        &mut self,
        lane: usize,
        spec: &S,
    ) -> Result<Arc<Kernel>, RpuError> {
        self.lanes[lane].session.compile(spec)
    }

    /// Dispatches a compiled kernel on `lane` over that lane's resident
    /// buffers, with per-lane accounting. Buffers known to live on a
    /// different lane are rejected with [`BufferError::ForeignLane`].
    ///
    /// # Errors
    ///
    /// Returns [`RpuError::Buffer`] for foreign or stale handles and
    /// shape mismatches, [`RpuError::Exec`] if the program faults.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn dispatch_on(
        &mut self,
        lane: usize,
        kernel: &Arc<Kernel>,
        inputs: &[DeviceBuffer],
        outputs: &[DeviceBuffer],
    ) -> Result<RunReport, RpuError> {
        self.check_residency(lane, inputs)?;
        self.check_residency(lane, outputs)?;
        let l = &mut self.lanes[lane];
        let report = l.session.dispatch(kernel, inputs, outputs)?;
        l.account(&report);
        Ok(report)
    }

    /// One lane's lifetime accounting.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn lane_stats(&self, lane: usize) -> LaneStats {
        let l = &self.lanes[lane];
        LaneStats {
            lane,
            dispatches: l.dispatches,
            cycles: l.cycles,
            busy_us: l.busy_us,
            jobs: l.jobs,
            wall_busy_us: l.wall_busy_us,
            transfer: l.transfer,
        }
    }

    /// Every lane's lifetime accounting.
    pub fn stats(&self) -> Vec<LaneStats> {
        (0..self.lanes.len()).map(|i| self.lane_stats(i)).collect()
    }

    /// One lane's kernel-cache counters.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn cache_stats(&self, lane: usize) -> CacheStats {
        self.lanes[lane].session.cache_stats()
    }

    /// The busiest lane's total simulated time, in microseconds — the
    /// cluster's completion time so far.
    pub fn makespan_us(&self) -> f64 {
        self.lanes.iter().map(|l| l.busy_us).fold(0.0, f64::max)
    }

    /// Total simulated time across every lane, in microseconds (what one
    /// lane running everything sequentially would take).
    pub fn total_busy_us(&self) -> f64 {
        self.lanes.iter().map(|l| l.busy_us).sum()
    }

    /// Kernels dispatched across every lane.
    pub fn total_dispatches(&self) -> u64 {
        self.lanes.iter().map(|l| l.dispatches).sum()
    }

    /// Serializes every lane's device state plus the buffer → lane
    /// placement map as one versioned `SNAP_V1` cluster snapshot (see
    /// [`RpuSession::snapshot`] for what each lane records).
    pub fn snapshot_all(&self) -> Vec<u8> {
        let mut owners: Vec<(u64, u64)> = self
            .owners
            .iter()
            .map(|(&id, &lane)| (id, lane as u64))
            .collect();
        owners.sort_unstable();
        let lanes: Vec<Vec<u8>> = self.lanes.iter().map(|l| l.session.snapshot()).collect();
        snapshot::encode_cluster(&owners, &lanes)
    }

    /// Restores every lane (and the placement map) from a cluster
    /// snapshot. Refuses while any lane still has live buffers — use
    /// [`restore_all_replacing`](RpuCluster::restore_all_replacing) to
    /// swap state out from under live handles atomically.
    ///
    /// # Errors
    ///
    /// [`RpuError::Snapshot`] — [`SnapshotError::LiveBuffers`] when any
    /// lane has live allocations, plus every failure
    /// [`restore_all_replacing`](RpuCluster::restore_all_replacing) can
    /// return. The cluster is unchanged on error.
    pub fn restore_all(&mut self, bytes: &[u8]) -> Result<(), RpuError> {
        let live: usize = self.lanes.iter().map(|l| l.session.live_buffers()).sum();
        if live > 0 {
            return Err(SnapshotError::LiveBuffers { live }.into());
        }
        self.restore_all_replacing(bytes)
    }

    /// Restores every lane from a cluster snapshot even if lanes have
    /// live buffers: every lane is prepared (decoded, geometry-checked,
    /// kernels regenerated) before *any* lane is mutated, so a
    /// multi-lane restore is all-or-nothing. Buffers allocated after
    /// the snapshot become stale on their lane (never double-freed);
    /// handles held since the snapshot keep resolving.
    ///
    /// # Errors
    ///
    /// [`RpuError::Snapshot`] for corrupt or future-version bytes, a
    /// lane-count or geometry mismatch, or a kernel that cannot be
    /// rebuilt. The cluster is unchanged on error.
    pub fn restore_all_replacing(&mut self, bytes: &[u8]) -> Result<(), RpuError> {
        let (owners, lane_bytes) = snapshot::decode_cluster(bytes)?;
        if lane_bytes.len() != self.lanes.len() {
            return Err(SnapshotError::LaneCountMismatch {
                snapshot: lane_bytes.len(),
                cluster: self.lanes.len(),
            }
            .into());
        }
        let mut new_owners = HashMap::with_capacity(owners.len());
        for &(id, lane) in &owners {
            let lane: usize = lane.try_into().map_err(|_| {
                RpuError::from(SnapshotError::Corrupt(
                    "placement-map lane index overflows usize".into(),
                ))
            })?;
            if lane >= self.lanes.len() {
                return Err(SnapshotError::Corrupt(format!(
                    "placement map points buffer {id} at lane {lane}, but the \
                     snapshot has {} lane(s)",
                    self.lanes.len()
                ))
                .into());
            }
            new_owners.insert(id, lane);
        }
        let prepared = self
            .lanes
            .iter()
            .zip(&lane_bytes)
            .map(|(lane, bytes)| lane.session.prepare_restore(bytes))
            .collect::<Result<Vec<_>, _>>()?;
        for (lane, p) in self.lanes.iter_mut().zip(prepared) {
            lane.session.apply_restore(p);
        }
        self.owners = new_owners;
        Ok(())
    }

    /// Spawns one persistent worker thread per lane and hands the
    /// calling thread a [`LanePool`] to feed: `f` submits shared
    /// (any-lane, work-stealing) or pinned (lane-affine, per-lane FIFO)
    /// jobs while the workers drain them concurrently. When `f` returns
    /// the pool closes, the workers finish whatever is still queued and
    /// exit, and `f`'s result comes back with the aggregated
    /// [`ClusterRunReport`] for everything that ran.
    ///
    /// This is the persistent engine behind
    /// [`run_jobs`](RpuCluster::run_jobs) — and behind the serving
    /// layer's scheduler, which keeps one pool open for the lifetime of
    /// the service instead of re-spawning threads per batch. The pool is
    /// `Sync`, so `f` may share it with client threads of its own
    /// (e.g. via [`std::thread::scope`]).
    ///
    /// A job that **panics** is caught on its worker thread and recorded
    /// ([`LanePool::panicked`]); no mutex is poisoned and the pool keeps
    /// draining, so a faulty job cannot wedge the cluster — long-lived
    /// callers decide whether a panic is fatal. Buffers the panicking
    /// job had allocated on its lane are leaked (their handles died with
    /// the job); the cluster itself stays usable.
    pub fn with_workers<'j, R>(
        &mut self,
        f: impl FnOnce(&LanePool<'j>) -> R,
    ) -> (R, ClusterRunReport) {
        let before: Vec<LaneStats> = self.stats();
        let trace_start = self.rpu.trace_sink().map(|sink| sink.next_seq());
        let nlanes = self.lanes.len();
        let pool = LanePool::new(nlanes);
        // Release `f` only once every worker thread is actually parked
        // on the pool, so a fast caller cannot fill *and* observe the
        // queues before all lanes exist.
        let start = std::sync::Barrier::new(nlanes + 1);
        let started = Instant::now();
        let out = std::thread::scope(|scope| {
            let pool = &pool;
            let start = &start;
            for (index, lane) in self.lanes.iter_mut().enumerate() {
                scope.spawn(move || {
                    start.wait();
                    let mut worker = LaneWorker { index, lane };
                    while let Some(job) = pool.next_job(index) {
                        // No lock is held across the job, and a panic is
                        // caught right here on the worker thread — so a
                        // faulty job can never poison the queue state
                        // the other lanes are draining.
                        let t0 = Instant::now();
                        let outcome =
                            std::panic::catch_unwind(AssertUnwindSafe(|| job(&mut worker)));
                        worker.lane.jobs += 1;
                        worker.lane.wall_busy_us += t0.elapsed().as_secs_f64() * 1e6;
                        pool.finish(index, outcome.err());
                    }
                });
            }
            start.wait();
            let _close = PoolCloseGuard(pool);
            f(pool)
        });
        let wall_us = started.elapsed().as_secs_f64() * 1e6;

        let per_lane: Vec<LaneStats> = self
            .stats()
            .iter()
            .zip(&before)
            .map(|(a, b)| LaneStats::delta(a, b))
            .collect();
        let makespan_us = per_lane.iter().map(|l| l.busy_us).fold(0.0, f64::max);
        let sequential_us = per_lane.iter().map(|l| l.busy_us).sum();
        let total_cycles = per_lane.iter().map(|l| l.cycles).sum();
        let mut transfer = TransferStats::default();
        for l in &per_lane {
            transfer.absorb(&l.transfer);
        }
        let report = ClusterRunReport {
            towers: pool.executed(),
            lanes: nlanes,
            per_lane,
            makespan_us,
            sequential_us,
            total_cycles,
            transfer,
            wall_us,
            queue_peak: pool.queue_peak(),
            trace: match (self.rpu.trace_sink(), trace_start) {
                (Some(sink), Some(start)) => sink.events_since(start),
                _ => Vec::new(),
            },
        };
        (out, report)
    }

    /// Runs `jobs.len()` independent lane jobs across the lanes with the
    /// work-stealing scheduler — the engine behind [`RnsExecutor`]'s
    /// tower sharding *and* the per-digit key-switch products of
    /// `RlweEvaluator::mul`/`rotate`. Every lane runs on its own OS
    /// thread, pulling the next un-started job from the shared queue
    /// until it drains; results come back in job order plus the
    /// aggregated report. (A one-shot convenience over
    /// [`with_workers`](RpuCluster::with_workers).)
    ///
    /// A job that **panics** (as opposed to returning an error) is
    /// caught on the worker thread and surfaced as
    /// [`RpuError::LanePanic`] — the queue drains cleanly and no mutex
    /// is poisoned, so the remaining lanes stop instead of wedging.
    /// Buffers the panicking job had allocated on its lane are leaked
    /// (their handles died with the job); the cluster itself stays
    /// usable.
    ///
    /// # Errors
    ///
    /// Returns the first job error or panic (remaining queued work is
    /// abandoned; in-flight jobs finish their current dispatch).
    pub fn run_jobs<'j, T: Send>(
        &mut self,
        jobs: Vec<LaneJob<'j, T>>,
    ) -> Result<(Vec<T>, ClusterRunReport), RpuError> {
        let results: Vec<Mutex<Option<T>>> = (0..jobs.len()).map(|_| Mutex::new(None)).collect();
        let failure: Mutex<Option<RpuError>> = Mutex::new(None);
        let ((), report) = self.with_workers(|pool| {
            for (t, job) in jobs.into_iter().enumerate() {
                let results = &results;
                let failure = &failure;
                pool.submit(Box::new(move |w| {
                    // Abandon still-queued work the moment anything has
                    // failed — one-shot batches stop on first error.
                    if failure.lock().expect("not poisoned").is_some() {
                        return;
                    }
                    match std::panic::catch_unwind(AssertUnwindSafe(|| job(w))) {
                        Ok(Ok(v)) => *results[t].lock().expect("not poisoned") = Some(v),
                        Ok(Err(e)) => {
                            failure.lock().expect("not poisoned").get_or_insert(e);
                        }
                        Err(payload) => {
                            failure.lock().expect("not poisoned").get_or_insert(
                                RpuError::LanePanic {
                                    lane: w.lane_index(),
                                    message: panic_message(payload.as_ref()),
                                },
                            );
                        }
                    }
                }));
            }
            pool.wait_idle();
        });

        if let Some(e) = failure.into_inner().expect("not poisoned") {
            return Err(e);
        }
        let outputs: Vec<T> = results
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("not poisoned")
                    .expect("every job completed")
            })
            .collect();
        Ok((outputs, report))
    }

    /// Runs `towers.len()` independent tower jobs across the lanes (a
    /// [`run_jobs`](RpuCluster::run_jobs) convenience for the fused
    /// negacyclic convolution).
    ///
    /// # Errors
    ///
    /// Returns the first tower error (remaining queued work is
    /// abandoned; in-flight towers finish their dispatch).
    pub fn run_towers(
        &mut self,
        towers: &[TowerJob<'_>],
        style: CodegenStyle,
    ) -> Result<(Vec<Vec<u128>>, ClusterRunReport), RpuError> {
        let jobs: Vec<LaneJob<'_, Vec<u128>>> = towers
            .iter()
            .map(|job| {
                let job = *job;
                Box::new(move |w: &mut LaneWorker<'_, '_>| {
                    w.run_tower(job.n, job.q, job.a, job.b, style)
                }) as LaneJob<'_, Vec<u128>>
            })
            .collect();
        self.run_jobs(jobs)
    }
}

/// One independent unit of sharded work: a negacyclic product in tower
/// `q`'s residue field.
#[derive(Debug, Clone, Copy)]
pub struct TowerJob<'t> {
    /// Ring degree.
    pub n: usize,
    /// The tower modulus.
    pub q: u128,
    /// First operand's residues mod `q` (length `n`).
    pub a: &'t [u128],
    /// Second operand's residues mod `q` (length `n`).
    pub b: &'t [u128],
}

/// Shards RNS-decomposed ring workloads across an [`RpuCluster`] and
/// CRT-recombines on the host — the paper's Fig. 1 dataflow, with the
/// per-tower kernels spread over parallel lanes instead of looped
/// through one session.
#[derive(Debug)]
pub struct RnsExecutor<'a> {
    cluster: RpuCluster<'a>,
    style: CodegenStyle,
}

impl<'a> RnsExecutor<'a> {
    /// Wraps a cluster with the default ([`CodegenStyle::Optimized`])
    /// kernel style.
    pub fn new(cluster: RpuCluster<'a>) -> Self {
        Self::with_style(cluster, CodegenStyle::Optimized)
    }

    /// Wraps a cluster with an explicit kernel style.
    pub fn with_style(cluster: RpuCluster<'a>, style: CodegenStyle) -> Self {
        RnsExecutor { cluster, style }
    }

    /// The underlying cluster (lane statistics, manual buffer work).
    pub fn cluster(&self) -> &RpuCluster<'a> {
        &self.cluster
    }

    /// Mutable access to the underlying cluster.
    pub fn cluster_mut(&mut self) -> &mut RpuCluster<'a> {
        &mut self.cluster
    }

    /// The full tower-sharded negacyclic multiply: tower `t` of the
    /// result is `a_towers[t] ·_neg b_towers[t] (mod moduli[t])`, each
    /// tower one fused-convolution dispatch (forward NTT ×2 → pointwise
    /// multiply → inverse NTT) on whichever lane steals it. One upload
    /// per tower operand, one download per tower product.
    ///
    /// # Errors
    ///
    /// Returns [`RpuError::Config`] for mismatched tower counts or
    /// lengths, or the first lane error.
    pub fn negacyclic_mul_towers(
        &mut self,
        n: usize,
        moduli: &[u128],
        a_towers: &[Vec<u128>],
        b_towers: &[Vec<u128>],
    ) -> Result<(Vec<Vec<u128>>, ClusterRunReport), RpuError> {
        if a_towers.len() != moduli.len() || b_towers.len() != moduli.len() {
            return Err(RpuError::Config(format!(
                "tower count mismatch: {} moduli, {} / {} operand towers",
                moduli.len(),
                a_towers.len(),
                b_towers.len()
            )));
        }
        if let Some(t) = a_towers.iter().chain(b_towers).position(|t| t.len() != n) {
            return Err(RpuError::Config(format!(
                "tower {t} has the wrong length for ring degree {n}"
            )));
        }
        let jobs: Vec<TowerJob<'_>> = moduli
            .iter()
            .zip(a_towers.iter().zip(b_towers))
            .map(|(&q, (a, b))| TowerJob { n, q, a, b })
            .collect();
        self.cluster.run_towers(&jobs, self.style)
    }

    /// Multiplies two [`RnsPolynomial`]s on the cluster: towers are
    /// sharded across lanes, and the products are lifted back into an
    /// `RnsPolynomial` over the same context (CRT reconstruction — e.g.
    /// [`RnsPolynomial::to_big_coeffs`] — then happens on the host
    /// whenever the caller wants wide coefficients).
    ///
    /// # Errors
    ///
    /// Returns [`RpuError::Config`] if the operands use different
    /// contexts, [`RpuError::Ring`] if the products cannot be lifted, or
    /// the first lane error.
    pub fn mul(
        &mut self,
        a: &RnsPolynomial,
        b: &RnsPolynomial,
    ) -> Result<(RnsPolynomial, ClusterRunReport), RpuError> {
        let ctx: &Arc<RnsContext> = a.rns_context();
        if !Arc::ptr_eq(ctx, b.rns_context()) {
            return Err(RpuError::Config(
                "operands must share an RNS context".into(),
            ));
        }
        let n = ctx.degree();
        let moduli = ctx.modulus_values();
        let a_towers = a.tower_coeffs();
        let b_towers = b.tower_coeffs();
        let (products, report) = self.negacyclic_mul_towers(n, &moduli, &a_towers, &b_towers)?;
        let lifted = RnsPolynomial::from_tower_coeffs(ctx, &products)?;
        Ok((lifted, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpu_arith::find_ntt_prime_chain;

    /// Lanes must be shippable to worker threads: a compile-time
    /// property the work-stealing scheduler rests on.
    #[test]
    fn sessions_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Lane<'static>>();
        assert_send::<RpuSession<'static>>();
        assert_send::<RpuError>();
    }

    #[test]
    fn cluster_builds_independent_lanes() {
        let rpu = Rpu::builder().lanes(3).build().unwrap();
        let mut c = rpu.cluster();
        assert_eq!(c.lane_count(), 3);
        let x = c.upload_to(0, &vec![7u128; 64]).unwrap();
        assert_eq!(c.locate(&x), Some(0));
        assert_eq!(c.lane_session(0).device_mem_in_use(), 64);
        assert_eq!(c.lane_session(1).device_mem_in_use(), 0);
        assert_eq!(c.download(&x).unwrap(), vec![7u128; 64]);
        c.free(x).unwrap();
        assert_eq!(c.locate(&x), None);
    }

    #[test]
    fn migrate_moves_data_between_lanes() {
        let rpu = Rpu::builder().lanes(2).build().unwrap();
        let mut c = rpu.cluster();
        let data: Vec<u128> = (0..256).collect();
        let x = c.upload_to(0, &data).unwrap();
        let y = c.migrate(x, 1).unwrap();
        assert_eq!(c.locate(&y), Some(1));
        assert_eq!(c.download(&y).unwrap(), data);
        // the source handle is gone
        assert!(matches!(
            c.download(&x),
            Err(RpuError::Buffer(BufferError::StaleHandle { .. }))
        ));
        // same-lane migration is the identity
        let z = c.migrate(y, 1).unwrap();
        assert_eq!(z, y);
    }

    #[test]
    fn executor_matches_host_towers_and_balances_lanes() {
        let n = 1024usize;
        let towers = 4usize;
        let primes = find_ntt_prime_chain(60, 2 * n as u128, towers);
        let a: Vec<Vec<u128>> = primes
            .iter()
            .map(|&q| (0..n as u128).map(|i| (i * 31 + 7) % q).collect())
            .collect();
        let b: Vec<Vec<u128>> = primes
            .iter()
            .map(|&q| (0..n as u128).map(|i| (i * 17 + 3) % q).collect())
            .collect();

        let rpu = Rpu::builder().lanes(2).build().unwrap();
        let mut exec = RnsExecutor::new(rpu.cluster());
        // Retry a pathologically starved split (timing-dependent);
        // exactness and traffic accounting are asserted every attempt.
        let mut balanced = None;
        for _ in 0..3 {
            let (got, report) = exec.negacyclic_mul_towers(n, &primes, &a, &b).unwrap();
            for (t, &q) in primes.iter().enumerate() {
                let plan = rpu_ntt::Ntt128Plan::new(n, q).unwrap();
                assert_eq!(got[t], plan.negacyclic_mul(&a[t], &b[t]), "tower {t}");
            }
            assert_eq!(report.towers, towers);
            assert_eq!(report.lanes, 2);
            assert_eq!(report.per_lane.iter().map(|l| l.dispatches).sum::<u64>(), 4);
            // per-tower traffic: 2n up, n down, nothing left resident
            assert_eq!(report.transfer.host_to_device, 2 * n * towers);
            assert_eq!(report.transfer.device_to_host, n * towers);
            // even a skewed 3/1 split beats sequential
            if report.lanes_used() == 2 && report.speedup() > 1.2 {
                balanced = Some(report);
                break;
            }
        }
        let report = balanced.expect("both lanes must steal work within 3 runs");
        assert!(report.makespan_us > 0.0 && report.wall_us > 0.0);
        for lane in 0..2 {
            assert_eq!(exec.cluster().lane_session_mem(lane), 0);
        }
    }

    #[test]
    fn executor_shape_errors() {
        let rpu = Rpu::builder().build().unwrap();
        let mut exec = RnsExecutor::new(rpu.cluster());
        let bad = exec.negacyclic_mul_towers(1024, &[97, 193], &[vec![0; 1024]], &[vec![0; 1024]]);
        assert!(matches!(bad, Err(RpuError::Config(_))));
        let bad = exec.negacyclic_mul_towers(
            1024,
            &[97],
            &[vec![0; 512]], // wrong length
            &[vec![0; 1024]],
        );
        assert!(matches!(bad, Err(RpuError::Config(_))));
    }

    impl<'a> RpuCluster<'a> {
        /// Test helper: a lane's resident element count without taking
        /// `&mut self`.
        fn lane_session_mem(&self, lane: usize) -> usize {
            self.lanes[lane].session.device_mem_in_use()
        }
    }
}
