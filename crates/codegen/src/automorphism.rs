//! The Galois-automorphism kernel: an on-device coefficient permutation.
//!
//! HE rotation applies `σ_g : a(x) → a(x^g)` to every ciphertext
//! component — on coefficients, an arbitrary permutation with sign
//! fix-ups (`x^{ig mod 2n} = ±x^{ig mod n}`). No static B512 addressing
//! mode can express it, which is exactly what the `vgather` indexed
//! load exists for: the generator bakes the permutation's index table
//! and a `{1, q-1}` sign table into the kernel image as constants, and
//! the program streams
//!
//! ```text
//! vload   vi, index[v]     ; where does lane i read from?
//! vgather vg, input, vi    ; route: one VBAR pass per vector
//! vload   vs, sign[v]      ; +1 or q-1 per lane
//! vmulmod vo, vg, vs, m0   ; apply the negacyclic sign
//! vstore  vo, output[v]
//! ```
//!
//! The permutation itself comes from [`rpu_ntt::automorphism_map`] — the
//! same single definition the host reference and every golden model use.

use crate::gen::RegPool;
use crate::kernel::{GoldenFn, Kernel, KernelKey, KernelOp, KernelSpec};
use crate::sched::list_schedule;
use crate::{CodegenError, CodegenStyle, Direction};
use rpu_arith::Modulus128;
use rpu_isa::consts::{VDM_MAX_BYTES, VECTOR_LEN};
use rpu_isa::{AReg, AddrMode, Instruction, MReg, Program};
use rpu_ntt::{apply_automorphism, automorphism_map};

/// Specification of the coefficient permutation of `σ_g` over
/// `Z_q[x]/(x^n + 1)`: input and output are natural-order coefficient
/// vectors. The Galois element is part of the kernel identity
/// ([`KernelKey::param`]), so rotations by different amounts cache as
/// distinct kernels.
///
/// # Examples
///
/// ```
/// use rpu_codegen::{AutomorphismSpec, CodegenStyle, KernelSpec};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let q = rpu_arith::find_ntt_prime_u128(126, 2048).expect("prime exists");
/// let kernel = AutomorphismSpec::new(1024, q, 5, CodegenStyle::Optimized).generate()?;
/// assert_eq!(kernel.arity(), 1);
/// assert!(kernel.verify()?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AutomorphismSpec {
    /// Ring degree (multiple of 512).
    pub n: usize,
    /// The modulus (any valid 127-bit-or-less modulus > 1).
    pub q: u128,
    /// The Galois element (odd; reduced mod `2n` at construction).
    pub g: usize,
    /// Code-generation style.
    pub style: CodegenStyle,
}

impl AutomorphismSpec {
    /// Creates an automorphism spec; `g` is normalized mod `2n` so equal
    /// automorphisms share one cache identity.
    pub fn new(n: usize, q: u128, g: usize, style: CodegenStyle) -> Self {
        let g = if n > 0 { g % (2 * n) } else { g };
        AutomorphismSpec { n, q, g, style }
    }
}

impl KernelSpec for AutomorphismSpec {
    fn key(&self) -> KernelKey {
        KernelKey {
            op: KernelOp::Automorphism,
            n: self.n,
            q: self.q,
            direction: Direction::Forward,
            style: self.style,
            param: self.g as u128,
        }
    }

    fn generate(&self) -> Result<Kernel, CodegenError> {
        let AutomorphismSpec { n, q, g, style } = *self;
        if n == 0 || !n.is_multiple_of(VECTOR_LEN) {
            return Err(CodegenError::UnsupportedDegree(n));
        }
        let modulus =
            Modulus128::new(q).ok_or(CodegenError::Schedule(rpu_ntt::NttError::InvalidModulus))?;
        let map = automorphism_map(n, g).map_err(CodegenError::Schedule)?;
        // Layout: [input n][output n][index table n][sign table n].
        let (out_off, idx_off, sign_off) = (n, 2 * n, 3 * n);
        let total = 4 * n;
        if total * rpu_isa::consts::ELEM_BYTES > VDM_MAX_BYTES {
            return Err(CodegenError::WorkingSetTooLarge {
                bytes: total * rpu_isa::consts::ELEM_BYTES,
            });
        }

        let mut base_image = vec![0u128; total];
        for (j, &(src, negate)) in map.iter().enumerate() {
            base_image[idx_off + j] = src as u128;
            base_image[sign_off + j] = if negate { q - 1 } else { 1 };
        }

        let base = AReg::at(0);
        let m0 = MReg::at(0);
        let mut program = Program::new(format!("autom{n}_g{g}_{style}"));
        // SDM image is [0, q]: the elementwise slot convention. The
        // sign fix-up constants (±1) live in the VDM as vectors, not as
        // SDM scalars, so there are no engine companions to bake.
        program.push(Instruction::MLoad {
            rt: m0,
            base,
            offset: 1,
        });
        let mut pool = RegPool::new(1, 48);
        for v in 0..n / VECTOR_LEN {
            let at = |region: usize| (region + v * VECTOR_LEN) as u32;
            let vi = pool.alloc();
            program.push(Instruction::VLoad {
                vd: vi,
                base,
                offset: at(idx_off),
                mode: AddrMode::Unit,
            });
            let vg = pool.alloc();
            program.push(Instruction::VGather {
                vd: vg,
                base,
                offset: 0, // indices are absolute within the input region
                vi,
            });
            pool.release(vi);
            let vs = pool.alloc();
            program.push(Instruction::VLoad {
                vd: vs,
                base,
                offset: at(sign_off),
                mode: AddrMode::Unit,
            });
            let vo = pool.alloc();
            program.push(Instruction::VMulMod {
                vd: vo,
                vs: vg,
                vt: vs,
                rm: m0,
            });
            pool.release(vg);
            pool.release(vs);
            program.push(Instruction::VStore {
                vs: vo,
                base,
                offset: at(out_off),
                mode: AddrMode::Unit,
            });
            pool.release(vo);
        }
        if style != CodegenStyle::Unoptimized {
            program = list_schedule(&program);
        }

        let golden: GoldenFn = Box::new(move |ops: &[&[u128]]| {
            let reduced: Vec<u128> = ops[0].iter().map(|&c| modulus.reduce(c)).collect();
            apply_automorphism(&reduced, g, q).expect("spec validated g at generation")
        });
        Ok(Kernel::new(
            self.key(),
            program,
            base_image,
            vec![0, q],
            vec![(0, n)],
            (out_off, n),
            golden,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prime(n: usize) -> u128 {
        rpu_arith::find_ntt_prime_u128(126, 2 * n as u128).expect("prime exists")
    }

    #[test]
    fn rejects_invalid_parameters() {
        let q = prime(1024);
        assert!(matches!(
            AutomorphismSpec::new(100, q, 5, CodegenStyle::Optimized).generate(),
            Err(CodegenError::UnsupportedDegree(100))
        ));
        assert!(matches!(
            AutomorphismSpec::new(1024, q, 6, CodegenStyle::Optimized).generate(),
            Err(CodegenError::Schedule(_))
        ));
    }

    #[test]
    fn verifies_and_matches_reference_for_many_elements() {
        let n = 1024usize;
        let q = prime(n);
        for g in [1usize, 3, 5, 25, 2 * n - 1] {
            for style in [CodegenStyle::Optimized, CodegenStyle::Unoptimized] {
                let kernel = AutomorphismSpec::new(n, q, g, style).generate().unwrap();
                assert!(kernel.verify().unwrap(), "g={g} {style:?}");
            }
            let kernel = AutomorphismSpec::new(n, q, g, CodegenStyle::Optimized)
                .generate()
                .unwrap();
            let input: Vec<u128> = (0..n as u128).map(|i| (i * 31 + 7) % q).collect();
            let got = kernel.execute(&[&input]).unwrap();
            assert_eq!(got, apply_automorphism(&input, g, q).unwrap(), "g={g}");
        }
    }

    #[test]
    fn galois_element_is_part_of_the_identity() {
        let n = 1024usize;
        let q = prime(n);
        let a = AutomorphismSpec::new(n, q, 5, CodegenStyle::Optimized);
        let b = AutomorphismSpec::new(n, q, 25, CodegenStyle::Optimized);
        assert_ne!(a.key(), b.key(), "different g must not collide in caches");
        // normalization: g and g + 2n are the same automorphism
        let c = AutomorphismSpec::new(n, q, 5 + 2 * n, CodegenStyle::Optimized);
        assert_eq!(a.key(), c.key());
    }

    #[test]
    fn identity_automorphism_copies() {
        let n = 1024usize;
        let q = prime(n);
        let kernel = AutomorphismSpec::new(n, q, 1, CodegenStyle::Optimized)
            .generate()
            .unwrap();
        let input: Vec<u128> = (0..n as u128).map(|i| (i * 7 + 3) % q).collect();
        assert_eq!(kernel.execute(&[&input]).unwrap(), input);
    }
}
