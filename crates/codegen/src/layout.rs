//! VDM/SDM memory layout for generated NTT kernels.
//!
//! Generated kernels use absolute element offsets with the convention
//! `ARF[a0] = 0` (the reset state), which the host can relocate by
//! setting `a0` — the paper's stated purpose for the ARF. The layout is
//! a ping-pong pair of ring buffers followed by the per-stage twiddle
//! tables:
//!
//! ```text
//! 0 ........ n ........ 2n ......................... total
//! [ buffer A ][ buffer B ][ stage-0 tw ][ stage-1 tw ] ...
//! ```

use rpu_isa::consts::VECTOR_LEN;

/// Element-offset map of a kernel's VDM working set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelLayout {
    /// Ring degree.
    pub n: usize,
    /// Offset of ping-pong buffer A (kernel input lives here).
    pub buffer_a: usize,
    /// Offset of ping-pong buffer B.
    pub buffer_b: usize,
    /// Per-stage twiddle-table base offsets.
    pub twiddle_bases: Vec<usize>,
    /// Number of distinct 512-element twiddle vectors per stage.
    pub twiddle_counts: Vec<usize>,
    /// Offset of the buffer holding the kernel output.
    pub output_offset: usize,
    /// Total VDM elements used.
    pub total_elements: usize,
}

impl KernelLayout {
    /// Builds the layout for an `n`-point kernel whose stage `s` needs
    /// `twiddle_counts[s]` distinct twiddle vectors.
    ///
    /// The output lands in buffer A when the stage count is even, B when
    /// odd (the ping-pong parity).
    pub fn new(n: usize, twiddle_counts: Vec<usize>) -> Self {
        let stages = twiddle_counts.len();
        let mut next = 2 * n;
        let mut twiddle_bases = Vec::with_capacity(stages);
        for &c in &twiddle_counts {
            twiddle_bases.push(next);
            next += c * VECTOR_LEN;
        }
        let output_offset = if stages.is_multiple_of(2) { 0 } else { n };
        KernelLayout {
            n,
            buffer_a: 0,
            buffer_b: n,
            twiddle_bases,
            twiddle_counts,
            output_offset,
            total_elements: next,
        }
    }

    /// The input/output buffer offsets at stage `s` (ping-pong parity).
    pub fn stage_buffers(&self, s: u32) -> (usize, usize) {
        if s.is_multiple_of(2) {
            (self.buffer_a, self.buffer_b)
        } else {
            (self.buffer_b, self.buffer_a)
        }
    }

    /// Offset of distinct twiddle vector `v` of stage `s`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range for the stage.
    pub fn twiddle_vector_offset(&self, s: u32, v: usize) -> usize {
        assert!(v < self.twiddle_counts[s as usize], "twiddle vector index");
        self.twiddle_bases[s as usize] + v * VECTOR_LEN
    }

    /// VDM footprint in bytes.
    pub fn total_bytes(&self) -> usize {
        self.total_elements * rpu_isa::consts::ELEM_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_contiguous() {
        let l = KernelLayout::new(4096, vec![1, 1, 2, 4]);
        assert_eq!(l.buffer_a, 0);
        assert_eq!(l.buffer_b, 4096);
        assert_eq!(l.twiddle_bases[0], 8192);
        assert_eq!(l.twiddle_bases[1], 8192 + 512);
        assert_eq!(l.twiddle_bases[2], 8192 + 1024);
        assert_eq!(l.twiddle_bases[3], 8192 + 2048);
        assert_eq!(l.total_elements, 8192 + 1024 + 1024 + 2048);
    }

    #[test]
    fn output_parity() {
        // even stage count -> output back in A
        assert_eq!(KernelLayout::new(16, vec![1, 1]).output_offset, 0);
        // odd -> B
        assert_eq!(KernelLayout::new(16, vec![1, 1, 1]).output_offset, 16);
    }

    #[test]
    fn stage_buffers_ping_pong() {
        let l = KernelLayout::new(1024, vec![1; 10]);
        assert_eq!(l.stage_buffers(0), (0, 1024));
        assert_eq!(l.stage_buffers(1), (1024, 0));
        assert_eq!(l.stage_buffers(2), (0, 1024));
    }
}
