//! The fused rescale kernel: `out = (ĉ − NTT(δ)) · p⁻¹ mod q`.
//!
//! Dropping the last live prime `p` of a leveled RNS ciphertext is,
//! per surviving tower `q`, a three-step dataflow on the evaluation-form
//! component `ĉ`: transform the host-computed rounding correction `δ`
//! (natural-order coefficients, `δ ≡ c mod p`, `δ ≡ 0 mod t`) into the
//! evaluation domain, subtract it, and scale every lane by the constant
//! `p⁻¹ mod q`. This module fuses the three into one B512 program —
//! the same NTT-plus-staged-pointwise shape as the key-switch kernel,
//! with a scalar-broadcast multiply (`vsmulmod`) as the final stage:
//!
//! ```text
//! VDM:  [ fwd-NTT window: δ in, δ̂ out ][ ĉ ][ ĉ − δ̂ ][ out ]
//! SDM:  [ n⁻¹, q, companion(n⁻¹), p⁻¹, companion(p⁻¹) ]
//! ```
//!
//! Because the NTT is linear and `δ`, `p⁻¹` are exact integers, the
//! device result is bit-identical to the host oracle's coefficient-
//! domain divide-and-round — the differential suites pin this.

use crate::elementwise::emit_pointwise;
use crate::kernel::{push_relocated, GoldenFn, Kernel, KernelKey, KernelOp, KernelSpec};
use crate::sched::list_schedule;
use crate::{CodegenError, CodegenStyle, Direction, ElementwiseOp, NttKernel};
use rpu_isa::consts::{VDM_MAX_BYTES, VECTOR_LEN};
use rpu_isa::{AReg, AddrMode, Instruction, MReg, Program, SReg, VReg};

/// Specification of one surviving tower's rescale step over
/// `Z_q[x]/(x^n + 1)` when dropping prime `p`: operands are the
/// rounding correction `δ` (natural-order coefficients mod `q`) and the
/// evaluation-form component `ĉ`; the output is the rescaled
/// evaluation-form component.
///
/// # Examples
///
/// ```
/// use rpu_codegen::{CodegenStyle, KernelSpec, RescaleSpec};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let chain = rpu_arith::ModulusChain::generate(1024, 65537, 59, 2)?;
/// let spec = RescaleSpec::new(1024, chain.prime(0), chain.prime(1), CodegenStyle::Optimized);
/// let kernel = spec.generate()?;
/// assert_eq!(kernel.arity(), 2);
/// assert!(kernel.verify()?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RescaleSpec {
    /// Ring degree (power of two ≥ 1024).
    pub n: usize,
    /// The surviving tower's prime modulus (`q ≡ 1 (mod 2n)`).
    pub q: u128,
    /// The dropped prime `p` (coprime to `q`).
    pub p: u128,
    /// Code-generation style applied to every segment.
    pub style: CodegenStyle,
}

impl RescaleSpec {
    /// Creates a rescale spec for surviving modulus `q`, dropped prime `p`.
    pub fn new(n: usize, q: u128, p: u128, style: CodegenStyle) -> Self {
        RescaleSpec { n, q, p, style }
    }
}

impl KernelSpec for RescaleSpec {
    fn key(&self) -> KernelKey {
        KernelKey {
            op: KernelOp::Rescale,
            n: self.n,
            q: self.q,
            direction: Direction::Forward,
            style: self.style,
            param: self.p,
        }
    }

    fn generate(&self) -> Result<Kernel, CodegenError> {
        let RescaleSpec { n, q, p, style } = *self;
        if p < 2 || p % q == 0 || q % p == 0 {
            // p must be invertible mod q for the scale stage to exist.
            return Err(CodegenError::Schedule(rpu_ntt::NttError::InvalidModulus));
        }
        let fwd = NttKernel::generate(n, q, Direction::Forward, style)?;
        let w = fwd.layout().total_elements;
        // Regions above the NTT window; each stage reads and writes
        // disjoint ranges so the list scheduler stays honest.
        let (hat_off, diff_off, out_off) = (w, w + n, w + 2 * n);
        let total = w + 3 * n;
        if total * rpu_isa::consts::ELEM_BYTES > VDM_MAX_BYTES {
            return Err(CodegenError::WorkingSetTooLarge {
                bytes: total * rpu_isa::consts::ELEM_BYTES,
            });
        }

        let p_inv = rpu_arith::mod_inverse(p % q, q);
        // SDM layout: the NTT slots [n⁻¹, q, companion(n⁻¹)], then p⁻¹
        // and its engine companion (Shoup quotient or Montgomery form,
        // matching the engine the modulus width selects at dispatch).
        let mut sdm = fwd.sdm_image();
        let p_inv_slot = sdm.len();
        sdm.push(p_inv);
        sdm.push(crate::kernel::scalar_companion(q, p_inv));
        let (fwd_out, _) = fwd.output_range();
        let mut program = Program::new(format!("rescale{n}_{style}"));
        // Forward transform of δ (window 0); its prologue leaves q in m0
        // for the pointwise stages.
        push_relocated(&mut program, fwd.program(), 0);
        // ĉ − δ̂ → diff.
        let mut seg = Program::new("sub");
        emit_pointwise(
            &mut seg,
            ElementwiseOp::SubMod,
            n,
            style,
            hat_off,
            fwd_out,
            diff_off,
        );
        if style != CodegenStyle::Unoptimized {
            seg = list_schedule(&seg);
        }
        push_relocated(&mut program, &seg, 0);
        // diff · p⁻¹ → out, p⁻¹ broadcast from its SDM slot.
        let mut seg = Program::new("scale");
        emit_scale_by_scalar(&mut seg, n, diff_off, out_off, p_inv_slot);
        if style != CodegenStyle::Unoptimized {
            seg = list_schedule(&seg);
        }
        push_relocated(&mut program, &seg, 0);

        let mut base_image = vec![0u128; total];
        base_image[..w].copy_from_slice(&fwd.vdm_image(&vec![0u128; n]));

        let schedule = fwd.schedule().clone();
        let modulus = schedule.modulus();
        let golden: GoldenFn = Box::new(move |ops: &[&[u128]]| {
            let delta_hat = schedule.forward(ops[0]);
            ops[1]
                .iter()
                .zip(&delta_hat)
                .map(|(&c, &d)| modulus.mul(modulus.sub(modulus.reduce(c), d), p_inv))
                .collect()
        });
        Ok(Kernel::new(
            self.key(),
            program,
            base_image,
            sdm,
            vec![(0, n), (hat_off, n)],
            (out_off, n),
            golden,
        ))
    }
}

/// Emits the scalar-broadcast scale stage: `dst[i] = src[i] · s0 mod q`
/// over `n / 512` vectors, with `s0` loaded once from SDM slot
/// `scalar_slot` and `m0` already holding the modulus.
fn emit_scale_by_scalar(
    program: &mut Program,
    n: usize,
    src: usize,
    dst: usize,
    scalar_slot: usize,
) {
    let base = AReg::at(0);
    let m0 = MReg::at(0);
    let s0 = SReg::at(0);
    program.push(Instruction::SLoad {
        rt: s0,
        base,
        offset: scalar_slot as u32,
    });
    for v in 0..n / VECTOR_LEN {
        let r = VReg::at(1 + (v % 4) as u8);
        program.push(Instruction::VLoad {
            vd: r,
            base,
            offset: (src + v * VECTOR_LEN) as u32,
            mode: AddrMode::Unit,
        });
        program.push(Instruction::VSMulMod {
            vd: r,
            vs: r,
            rt: s0,
            rm: m0,
        });
        program.push(Instruction::VStore {
            vs: r,
            base,
            offset: (dst + v * VECTOR_LEN) as u32,
            mode: AddrMode::Unit,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpu_arith::{Modulus128, ModulusChain};
    use rpu_ntt::PeaseSchedule;

    fn chain(n: usize) -> ModulusChain {
        ModulusChain::generate(n, 65537, 59, 2).expect("chain exists")
    }

    #[test]
    fn verifies_against_golden_model_both_styles() {
        let n = 1024usize;
        let c = chain(n);
        for style in [CodegenStyle::Optimized, CodegenStyle::Unoptimized] {
            let kernel = RescaleSpec::new(n, c.prime(0), c.prime(1), style)
                .generate()
                .unwrap();
            assert!(kernel.verify().unwrap(), "{style:?}");
            assert_eq!(kernel.arity(), 2);
        }
    }

    #[test]
    fn computes_subtract_then_scale() {
        let n = 1024usize;
        let c = chain(n);
        let (q, p) = (c.prime(0), c.prime(1));
        let kernel = RescaleSpec::new(n, q, p, CodegenStyle::Optimized)
            .generate()
            .unwrap();
        let m = Modulus128::new(q).unwrap();
        let p_inv = rpu_arith::mod_inverse(p % q, q);
        assert_eq!(m.mul(p_inv, m.reduce(p)), 1);
        let delta: Vec<u128> = (0..n as u128).map(|i| (i * 17 + 1) % q).collect();
        let chat: Vec<u128> = (0..n as u128).map(|i| (i * 29 + 2) % q).collect();
        let got = kernel.execute(&[&delta, &chat]).unwrap();
        let sched = PeaseSchedule::new(n, q).unwrap();
        let hat = sched.forward(&delta);
        for i in (0..n).step_by(97) {
            assert_eq!(got[i], m.mul(m.sub(chat[i], hat[i]), p_inv), "lane {i}");
        }
    }

    #[test]
    fn distinct_dropped_primes_have_distinct_keys() {
        let n = 1024usize;
        let c = ModulusChain::generate(n, 65537, 59, 3).expect("chain exists");
        let a = RescaleSpec::new(n, c.prime(0), c.prime(1), CodegenStyle::Optimized).key();
        let b = RescaleSpec::new(n, c.prime(0), c.prime(2), CodegenStyle::Optimized).key();
        assert_ne!(a, b, "dropped prime is part of the cache identity");
        assert_eq!(a.param, c.prime(1));
    }

    #[test]
    fn rejects_non_invertible_dropped_prime() {
        let n = 1024usize;
        let c = chain(n);
        assert!(
            RescaleSpec::new(n, c.prime(0), c.prime(0), CodegenStyle::Optimized)
                .generate()
                .is_err()
        );
        assert!(RescaleSpec::new(n, c.prime(0), 0, CodegenStyle::Optimized)
            .generate()
            .is_err());
    }
}
