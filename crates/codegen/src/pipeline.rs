//! The negacyclic convolution pipeline — the paper's actual poly-mult
//! dataflow as a single on-RPU program.
//!
//! Fig. 1 of the paper decomposes an RLWE ciphertext multiplication
//! into forward NTTs of both operands, a pointwise multiply, and an
//! inverse NTT. [`ConvolutionSpec`] fuses that whole chain into one
//! B512 program so the session layer can run (and cache) a complete
//! polynomial product per kernel launch:
//!
//! ```text
//! VDM:  [ fwd-NTT(A) region ][ fwd-NTT(B) region ][ inv-NTT region ]
//!        A in, Â out          B in, B̂ out          Â·B̂ in, C out
//! ```
//!
//! The three NTT regions are independently generated [`NttKernel`]s
//! relocated to disjoint VDM windows (generated kernels address memory
//! as `a0 + static offset`, so relocation is a static offset shift);
//! the pointwise stage bridges the two forward outputs into the inverse
//! input. All segments share one SDM block `[n^{-1}, q, companion(n^{-1})]`.

use crate::elementwise::emit_pointwise;
use crate::kernel::{push_relocated, GoldenFn, Kernel, KernelKey, KernelOp, KernelSpec};
use crate::sched::list_schedule;
use crate::{CodegenError, CodegenStyle, Direction, ElementwiseOp, NttKernel};
use rpu_isa::consts::VDM_MAX_BYTES;
use rpu_isa::Program;

/// Specification of a fused negacyclic polynomial multiplication:
/// `C = A ·_neg B` in `Z_q[x]/(x^n + 1)`, computed entirely on the RPU
/// as forward NTT ×2 → pointwise multiply → inverse NTT.
///
/// # Examples
///
/// ```
/// use rpu_codegen::{CodegenStyle, ConvolutionSpec, KernelSpec};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let q = rpu_arith::find_ntt_prime_u128(126, 2048).expect("prime exists");
/// let kernel = ConvolutionSpec::new(1024, q, CodegenStyle::Optimized).generate()?;
/// assert_eq!(kernel.arity(), 2);
/// assert!(kernel.verify()?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvolutionSpec {
    /// Ring degree (power of two ≥ 1024).
    pub n: usize,
    /// Prime modulus with `q ≡ 1 (mod 2n)`.
    pub q: u128,
    /// Code-generation style applied to every segment.
    pub style: CodegenStyle,
}

impl ConvolutionSpec {
    /// Creates a convolution spec.
    pub fn new(n: usize, q: u128, style: CodegenStyle) -> Self {
        ConvolutionSpec { n, q, style }
    }
}

impl KernelSpec for ConvolutionSpec {
    fn key(&self) -> KernelKey {
        KernelKey {
            op: KernelOp::NegacyclicMul,
            n: self.n,
            q: self.q,
            direction: Direction::Forward,
            style: self.style,
            param: 0,
        }
    }

    fn generate(&self) -> Result<Kernel, CodegenError> {
        let ConvolutionSpec { n, q, style } = *self;
        let fwd = NttKernel::generate(n, q, Direction::Forward, style)?;
        let inv = NttKernel::generate(n, q, Direction::Inverse, style)?;
        let fwd_total = fwd.layout().total_elements;
        let region_b = fwd_total;
        let region_inv = 2 * fwd_total;
        let total = 2 * fwd_total + inv.layout().total_elements;
        if total * rpu_isa::consts::ELEM_BYTES > VDM_MAX_BYTES {
            return Err(CodegenError::WorkingSetTooLarge {
                bytes: total * rpu_isa::consts::ELEM_BYTES,
            });
        }

        let (fwd_out, _) = fwd.output_range();
        let (inv_out, _) = inv.output_range();
        let mut program = Program::new(format!("negamul{}_{}", n, style));
        // Forward transforms of A (window 0) and B (window fwd_total).
        push_relocated(&mut program, fwd.program(), 0);
        push_relocated(&mut program, fwd.program(), region_b);
        // Pointwise multiply Â·B̂ into the inverse segment's input buffer
        // (its ping-pong buffer A, at the start of its window). m0 still
        // holds q from the forward prologues.
        program = pointwise_bridge(program, n, style, fwd_out, region_b + fwd_out, region_inv);
        // Inverse transform back to coefficients (window 2 * fwd_total).
        push_relocated(&mut program, inv.program(), region_inv);

        // Constant tables: each window keeps its own twiddles (duplicated
        // across the two forward windows; VDM capacity is checked above).
        let mut base_image = vec![0u128; total];
        let zero = vec![0u128; n];
        let fwd_consts = fwd.vdm_image(&zero);
        base_image[..fwd_total].copy_from_slice(&fwd_consts);
        base_image[region_b..region_b + fwd_total].copy_from_slice(&fwd_consts);
        base_image[region_inv..].copy_from_slice(&inv.vdm_image(&zero));

        let schedule = fwd.schedule().clone();
        let modulus = schedule.modulus();
        let golden: GoldenFn = Box::new(move |ops: &[&[u128]]| {
            let fa = schedule.forward(ops[0]);
            let fb = schedule.forward(ops[1]);
            let prod: Vec<u128> = fa
                .iter()
                .zip(&fb)
                .map(|(&x, &y)| modulus.mul(x, y))
                .collect();
            schedule.inverse(&prod)
        });
        Ok(Kernel::new(
            self.key(),
            program,
            base_image,
            fwd.sdm_image(), // [n_inv, q, companion(n_inv)], shared by all NTT segments
            vec![(0, n), (region_b, n)],
            (region_inv + inv_out, n),
            golden,
        ))
    }
}

/// Appends the pointwise-multiply stage: `dst[v] = a_src[v] * b_src[v]`
/// over `n / 512` vectors, via the shared
/// [`emit_pointwise`](crate::elementwise::emit_pointwise) emitter. The
/// segment is scheduled in isolation (the NTT segments were already
/// scheduled at generation) so the list scheduler never reorders across
/// the memory barrier between stages.
fn pointwise_bridge(
    mut program: Program,
    n: usize,
    style: CodegenStyle,
    a_src: usize,
    b_src: usize,
    dst: usize,
) -> Program {
    let mut stage = Program::new("pointwise");
    emit_pointwise(
        &mut stage,
        ElementwiseOp::MulMod,
        n,
        style,
        a_src,
        b_src,
        dst,
    );
    if style != CodegenStyle::Unoptimized {
        stage = list_schedule(&stage);
    }
    push_relocated(&mut program, &stage, 0);
    program
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpu_isa::consts::VECTOR_LEN;
    use rpu_ntt::testutil::{schoolbook_negacyclic, test_vector};

    fn prime(n: usize) -> u128 {
        rpu_arith::find_ntt_prime_u128(126, 2 * n as u128).expect("prime exists")
    }

    #[test]
    fn convolution_verifies_and_matches_schoolbook() {
        let n = 1024usize;
        let q = prime(n);
        let kernel = ConvolutionSpec::new(n, q, CodegenStyle::Optimized)
            .generate()
            .unwrap();
        assert!(kernel.verify().unwrap());
        let a = test_vector(n, q, 3);
        let b = test_vector(n, q, 4);
        let got = kernel.execute(&[&a, &b]).unwrap();
        let m = rpu_arith::Modulus128::new(q).unwrap();
        assert_eq!(got, schoolbook_negacyclic(m, &a, &b));
    }

    #[test]
    fn unoptimized_style_also_verifies() {
        let n = 1024usize;
        let kernel = ConvolutionSpec::new(n, prime(n), CodegenStyle::Unoptimized)
            .generate()
            .unwrap();
        assert!(kernel.verify().unwrap());
    }

    #[test]
    fn program_is_three_ntts_plus_pointwise() {
        let n = 2048usize;
        let q = prime(n);
        let conv = ConvolutionSpec::new(n, q, CodegenStyle::Optimized)
            .generate()
            .unwrap();
        let fwd = NttKernel::generate(n, q, Direction::Forward, CodegenStyle::Optimized).unwrap();
        let inv = NttKernel::generate(n, q, Direction::Inverse, CodegenStyle::Optimized).unwrap();
        let pointwise = 4 * (n / VECTOR_LEN); // 2 loads + 1 mul + 1 store per vector
        assert_eq!(
            conv.program().len(),
            2 * fwd.program().len() + inv.program().len() + pointwise,
        );
        // the working set is three NTT windows
        assert_eq!(
            conv.total_elements(),
            2 * fwd.layout().total_elements + inv.layout().total_elements
        );
    }
}
