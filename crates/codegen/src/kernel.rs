//! The uniform spec → kernel contract behind which all generators live.
//!
//! The paper's RPU is not an NTT ASIC: the B512 ISA runs arbitrary
//! vectorized modular arithmetic, and RLWE traffic mixes transforms with
//! pointwise ciphertext operations (Section II-A, Fig. 1). This module
//! generalizes the original one-shot NTT facade into that shape:
//!
//! * [`Kernel`] — a generated program together with everything needed to
//!   run and check it: VDM/SDM memory images, operand input ranges, the
//!   output range, and a scalar golden model.
//! * [`KernelSpec`] — the object-safe trait each workload generator
//!   implements ([`NttSpec`], [`ElementwiseSpec`](crate::ElementwiseSpec),
//!   [`ConvolutionSpec`](crate::ConvolutionSpec)); a spec is a pure value
//!   whose [`KernelKey`] identifies the generated kernel for caching.

use crate::{CodegenError, CodegenStyle, Direction, NttKernel};
use rpu_arith::{EngineKind, Modulus128, Modulus64, Mont128Engine, NativeU64Engine, ScalarEngine};
use rpu_isa::{Instruction, PredecodedProgram, Program};
use rpu_sim::{ExecError, FunctionalSim};
use std::sync::OnceLock;

/// The precomputed multiplication companion of scalar `w` under the
/// engine that will service modulus `q` at dispatch: the Shoup quotient
/// `⌊w·2⁶⁴/q⌋` for sub-63-bit moduli, the Montgomery form `w·R mod q`
/// for everything wider. Generators bake these next to the scalars they
/// accompany so an SDM image carries everything a hardware lane engine
/// would need — no on-device division or radix conversion at dispatch.
pub(crate) fn scalar_companion(q: u128, w: u128) -> u128 {
    match EngineKind::for_modulus(q) {
        EngineKind::NativeU64 | EngineKind::Barrett64 => {
            NativeU64Engine(Modulus64::new(q as u64).expect("valid modulus")).companion(w)
        }
        EngineKind::Montgomery128 => {
            Mont128Engine(Modulus128::new(q).expect("valid modulus")).companion(w)
        }
    }
}

/// The workload class of a generated kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelOp {
    /// A forward or inverse negacyclic NTT.
    Ntt,
    /// Lane-wise modular multiplication of two VDM vectors.
    PointwiseMul,
    /// Lane-wise modular addition of two VDM vectors.
    PointwiseAdd,
    /// Lane-wise modular subtraction of two VDM vectors.
    PointwiseSub,
    /// The full negacyclic polynomial product: forward NTT of both
    /// operands, pointwise multiply, inverse NTT — one B512 program.
    NegacyclicMul,
    /// The coefficient permutation of a Galois automorphism
    /// `x → x^g` over `Z_q[x]/(x^n + 1)` (indexed gather + sign fix-up).
    Automorphism,
    /// One gadget digit of a key switch: forward NTT of the digit,
    /// pointwise multiply by a resident key component, accumulate —
    /// one fused B512 program.
    KeySwitch,
    /// One surviving tower's share of a leveled rescale: forward NTT of
    /// the rounding correction `δ`, subtract from the evaluation-form
    /// component, scale by the dropped prime's inverse — one fused B512
    /// program.
    Rescale,
}

impl core::fmt::Display for KernelOp {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            KernelOp::Ntt => write!(f, "ntt"),
            KernelOp::PointwiseMul => write!(f, "pwmul"),
            KernelOp::PointwiseAdd => write!(f, "pwadd"),
            KernelOp::PointwiseSub => write!(f, "pwsub"),
            KernelOp::NegacyclicMul => write!(f, "negamul"),
            KernelOp::Automorphism => write!(f, "autom"),
            KernelOp::KeySwitch => write!(f, "keyswitch"),
            KernelOp::Rescale => write!(f, "rescale"),
        }
    }
}

/// The identity of a generated kernel — the cache key of the session
/// layer. Two specs with equal keys generate interchangeable kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct KernelKey {
    /// Workload class.
    pub op: KernelOp,
    /// Ring degree / vector length.
    pub n: usize,
    /// The modulus.
    pub q: u128,
    /// Transform direction ([`Direction::Forward`] for non-NTT ops).
    pub direction: Direction,
    /// Code-generation style.
    pub style: CodegenStyle,
    /// Op-specific parameter: the Galois element `g` for
    /// [`KernelOp::Automorphism`] kernels, the dropped prime for
    /// [`KernelOp::Rescale`] kernels, `0` for every other op. Part of
    /// the identity so kernels for different automorphisms (or
    /// different dropped towers) never collide in a cache.
    pub param: u128,
}

impl KernelKey {
    /// Size in bytes of the fixed-width wire encoding: one byte each for
    /// op / direction / style, a `u64` ring degree, and two `u128`s
    /// (modulus, op parameter), all little-endian.
    pub const ENCODED_LEN: usize = 43;

    /// Serializes the key into its fixed-width little-endian wire form —
    /// the kernel-cache-key encoding the snapshot format records so a
    /// restored session can re-pin every cached kernel.
    pub fn to_bytes(&self) -> [u8; Self::ENCODED_LEN] {
        let mut out = [0u8; Self::ENCODED_LEN];
        out[0] = match self.op {
            KernelOp::Ntt => 0,
            KernelOp::PointwiseMul => 1,
            KernelOp::PointwiseAdd => 2,
            KernelOp::PointwiseSub => 3,
            KernelOp::NegacyclicMul => 4,
            KernelOp::Automorphism => 5,
            KernelOp::KeySwitch => 6,
            KernelOp::Rescale => 7,
        };
        out[1..9].copy_from_slice(&(self.n as u64).to_le_bytes());
        out[9..25].copy_from_slice(&self.q.to_le_bytes());
        out[25] = match self.direction {
            Direction::Forward => 0,
            Direction::Inverse => 1,
        };
        out[26] = match self.style {
            CodegenStyle::Optimized => 0,
            CodegenStyle::Unoptimized => 1,
            CodegenStyle::StridedMemory => 2,
        };
        out[27..43].copy_from_slice(&self.param.to_le_bytes());
        out
    }

    /// Decodes a key from its [`to_bytes`](KernelKey::to_bytes) form.
    /// Returns `None` for unknown op / direction / style codes (a
    /// corrupt or future-format record) instead of panicking.
    pub fn from_bytes(bytes: &[u8; Self::ENCODED_LEN]) -> Option<KernelKey> {
        let op = match bytes[0] {
            0 => KernelOp::Ntt,
            1 => KernelOp::PointwiseMul,
            2 => KernelOp::PointwiseAdd,
            3 => KernelOp::PointwiseSub,
            4 => KernelOp::NegacyclicMul,
            5 => KernelOp::Automorphism,
            6 => KernelOp::KeySwitch,
            7 => KernelOp::Rescale,
            _ => return None,
        };
        let n = u64::from_le_bytes(bytes[1..9].try_into().expect("8 bytes"));
        let n: usize = n.try_into().ok()?;
        let q = u128::from_le_bytes(bytes[9..25].try_into().expect("16 bytes"));
        let direction = match bytes[25] {
            0 => Direction::Forward,
            1 => Direction::Inverse,
            _ => return None,
        };
        let style = match bytes[26] {
            0 => CodegenStyle::Optimized,
            1 => CodegenStyle::Unoptimized,
            2 => CodegenStyle::StridedMemory,
            _ => return None,
        };
        let param = u128::from_le_bytes(bytes[27..43].try_into().expect("16 bytes"));
        Some(KernelKey {
            op,
            n,
            q,
            direction,
            style,
            param,
        })
    }
}

/// A specification of one RPU workload: a pure value that knows its
/// [`KernelKey`] and how to generate the corresponding [`Kernel`].
///
/// The trait is object-safe so heterogeneous workloads can be batched
/// (`&[&dyn KernelSpec]`); see `RpuSession::run_batch` in the `rpu`
/// facade crate.
pub trait KernelSpec {
    /// The cache identity of the kernel this spec generates.
    fn key(&self) -> KernelKey;

    /// Generates the kernel (the expensive step the session cache
    /// amortizes).
    ///
    /// # Errors
    ///
    /// Returns [`CodegenError`] for unsupported parameters.
    fn generate(&self) -> Result<Kernel, CodegenError>;
}

/// The golden-model closure: operand slices in, expected output out.
pub(crate) type GoldenFn = Box<dyn Fn(&[&[u128]]) -> Vec<u128> + Send + Sync>;

/// A generated kernel: a **data-free** compiled program plus everything
/// needed to bind operands to it at dispatch time — the constant-only
/// VDM/SDM images, the operand map, and a scalar golden model.
///
/// A kernel is keyed purely by *shape* ([`KernelKey`]: op, n, q,
/// direction, style); no operand values are baked into the program or
/// its images. Binding data is a separate, cheap step: either
/// host-side via [`vdm_image`](Kernel::vdm_image)/[`execute`](Kernel::execute),
/// or on-device by [`load_into`](Kernel::load_into)-ing the constants once
/// and copying operands into [`input_ranges`](Kernel::input_ranges)
/// per dispatch (what `RpuSession::dispatch` in the `rpu` facade does
/// over resident buffers).
pub struct Kernel {
    key: KernelKey,
    /// The generated program, pre-decoded once at generation time so
    /// every dispatch can run the fast-path executor without re-paying
    /// per-step instruction matching (the kernel cache is the
    /// amortization point). Pre-decoding also computes the program's
    /// domain annotations (`PredecodedProgram::domain_plan`): per-op
    /// Montgomery-promotion hints the fast path consults to keep reused
    /// multiplicative sources resident across chained `vmulmod`s.
    program: PredecodedProgram,
    /// Full VDM image with all operand regions zeroed (constant tables
    /// such as twiddles are pre-placed).
    base_image: Vec<u128>,
    sdm: Vec<u128>,
    /// `(element offset, length)` of each operand in the VDM.
    input_ranges: Vec<(usize, usize)>,
    output_range: (usize, usize),
    golden: GoldenFn,
    /// Memoized golden-model verdict (set by [`Kernel::verify`]).
    verdict: OnceLock<bool>,
}

impl core::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Kernel")
            .field("key", &self.key)
            .field("instructions", &self.program.len())
            .field("total_elements", &self.base_image.len())
            .field("inputs", &self.input_ranges)
            .field("output_range", &self.output_range)
            .finish_non_exhaustive()
    }
}

impl Kernel {
    /// Assembles a kernel from its parts (generator-internal).
    pub(crate) fn new(
        key: KernelKey,
        program: Program,
        base_image: Vec<u128>,
        sdm: Vec<u128>,
        input_ranges: Vec<(usize, usize)>,
        output_range: (usize, usize),
        golden: GoldenFn,
    ) -> Self {
        Kernel {
            key,
            program: PredecodedProgram::new(program),
            base_image,
            sdm,
            input_ranges,
            output_range,
            golden,
            verdict: OnceLock::new(),
        }
    }

    /// The cache identity of this kernel.
    pub fn key(&self) -> KernelKey {
        self.key
    }

    /// The workload class.
    pub fn op(&self) -> KernelOp {
        self.key.op
    }

    /// Ring degree / vector length.
    pub fn degree(&self) -> usize {
        self.key.n
    }

    /// The modulus.
    pub fn modulus(&self) -> u128 {
        self.key.q
    }

    /// The arithmetic engine dispatch selects for this kernel, derived
    /// from the modulus width: [`EngineKind::NativeU64`] below 2⁶³,
    /// [`EngineKind::Montgomery128`] otherwise. Recorded per dispatch in
    /// `DispatchEvent` and matched by the SDM companion constants the
    /// generator baked (`scalar_companion`).
    pub fn engine(&self) -> EngineKind {
        EngineKind::for_modulus(self.key.q)
    }

    /// The generated B512 program.
    pub fn program(&self) -> &Program {
        self.program.program()
    }

    /// The pre-decoded form of the program, for the fast-path executor
    /// (`FunctionalSim::run_predecoded`).
    pub fn predecoded(&self) -> &PredecodedProgram {
        &self.program
    }

    /// Number of input operands the kernel consumes.
    pub fn arity(&self) -> usize {
        self.input_ranges.len()
    }

    /// `(element offset, length)` of each operand in the VDM.
    pub fn input_ranges(&self) -> &[(usize, usize)] {
        &self.input_ranges
    }

    /// Where the kernel's output lives in the VDM (element offset, length).
    pub fn output_range(&self) -> (usize, usize) {
        self.output_range
    }

    /// Total VDM elements the kernel's working set occupies.
    pub fn total_elements(&self) -> usize {
        self.base_image.len()
    }

    /// Builds the initial VDM image for the given operands: constant
    /// tables pre-placed, each operand copied into its input range.
    ///
    /// # Panics
    ///
    /// Panics if the operand count or any operand length does not match
    /// [`input_ranges`](Kernel::input_ranges).
    pub fn vdm_image(&self, operands: &[&[u128]]) -> Vec<u128> {
        assert_eq!(
            operands.len(),
            self.input_ranges.len(),
            "kernel takes {} operand(s)",
            self.input_ranges.len()
        );
        let mut image = self.base_image.clone();
        for (op, &(off, len)) in operands.iter().zip(&self.input_ranges) {
            assert_eq!(op.len(), len, "operand length must match its range");
            image[off..off + len].copy_from_slice(op);
        }
        image
    }

    /// The SDM image (scalar constants such as `q` and `n^{-1}`).
    pub fn sdm_image(&self) -> Vec<u128> {
        self.sdm.clone()
    }

    /// Number of SDM elements the kernel's scalar constants occupy.
    pub fn sdm_elements(&self) -> usize {
        self.sdm.len()
    }

    /// Loads the kernel's *data-free* state into a simulator: the
    /// constant VDM image (operand regions zeroed) at element 0 and the
    /// SDM constants at element 0. After this, the kernel can be
    /// dispatched repeatedly by refreshing only its operand ranges —
    /// constants such as twiddle tables are never written by the
    /// generated programs, so they stay valid across runs.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::HostTransferOutOfBounds`] if the simulator's
    /// VDM or SDM is smaller than the kernel's working set (grow it
    /// first with `ensure_vdm`/`ensure_sdm`).
    pub fn load_into(&self, sim: &mut FunctionalSim) -> Result<(), ExecError> {
        sim.write_vdm(0, &self.base_image)?;
        sim.write_sdm(0, &self.sdm)
    }

    /// Golden output for the given operands, from the scalar model.
    ///
    /// # Panics
    ///
    /// Panics if the operand count or lengths mismatch the kernel.
    pub fn expected_output(&self, operands: &[&[u128]]) -> Vec<u128> {
        assert_eq!(
            operands.len(),
            self.input_ranges.len(),
            "kernel takes {} operand(s)",
            self.input_ranges.len()
        );
        (self.golden)(operands)
    }

    /// Runs the kernel on a functional RPU with the given operands and
    /// returns the output range.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] if the program faults.
    ///
    /// # Panics
    ///
    /// Panics if the operand count or lengths mismatch the kernel.
    pub fn execute(&self, operands: &[&[u128]]) -> Result<Vec<u128>, ExecError> {
        let mut sim = FunctionalSim::new(self.total_elements(), self.sdm.len().max(16));
        sim.write_vdm(0, &self.vdm_image(operands))?;
        sim.write_sdm(0, &self.sdm)?;
        // The interpreter, deliberately: `execute`/`verify` are the
        // oracle side of the differential contract, so they must not
        // share an executor with the fast path they check.
        sim.run(self.program.program())?;
        let (off, len) = self.output_range;
        sim.read_vdm(off, len)
    }

    /// The deterministic synthetic operand family [`verify`](Kernel::verify)
    /// executes on (one vector per input range, residues mod `q`).
    pub fn synthetic_operands(&self) -> Vec<Vec<u128>> {
        let q = self.key.q;
        self.input_ranges
            .iter()
            .enumerate()
            .map(|(k, &(_, len))| {
                (0..len as u128)
                    .map(|i| (i * 0x9E37_79B9 + 12345 + k as u128 * 0x1000_0001) % q)
                    .collect()
            })
            .collect()
    }

    /// Executes the kernel on [`synthetic_operands`](Kernel::synthetic_operands)
    /// and compares the result against the golden model. The verdict is
    /// memoized on the kernel ([`verification`](Kernel::verification)),
    /// so it travels with every `Arc<Kernel>` clone.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] if the program faults.
    pub fn verify(&self) -> Result<bool, ExecError> {
        if let Some(&v) = self.verdict.get() {
            return Ok(v);
        }
        let operands = self.synthetic_operands();
        let refs: Vec<&[u128]> = operands.iter().map(Vec::as_slice).collect();
        let v = self.execute(&refs)? == self.expected_output(&refs);
        let _ = self.verdict.set(v);
        Ok(v)
    }

    /// The memoized golden-model verdict, if [`verify`](Kernel::verify)
    /// has completed: `Some(true)` matched, `Some(false)` mismatched,
    /// `None` not yet verified.
    pub fn verification(&self) -> Option<bool> {
        self.verdict.get().copied()
    }
}

/// Specification of a single forward or inverse negacyclic NTT — the
/// session-API form of [`NttKernel::generate`].
///
/// # Examples
///
/// ```
/// use rpu_codegen::{CodegenStyle, Direction, KernelSpec, NttSpec};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let q = rpu_arith::find_ntt_prime_u128(126, 2048).expect("prime exists");
/// let spec = NttSpec::new(1024, q, Direction::Forward, CodegenStyle::Optimized);
/// let kernel = spec.generate()?;
/// assert!(kernel.verify()?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NttSpec {
    /// Ring degree (power of two ≥ 1024).
    pub n: usize,
    /// Prime modulus with `q ≡ 1 (mod 2n)`.
    pub q: u128,
    /// Transform direction.
    pub direction: Direction,
    /// Code-generation style.
    pub style: CodegenStyle,
}

impl NttSpec {
    /// Creates an NTT spec.
    pub fn new(n: usize, q: u128, direction: Direction, style: CodegenStyle) -> Self {
        NttSpec {
            n,
            q,
            direction,
            style,
        }
    }
}

impl KernelSpec for NttSpec {
    fn key(&self) -> KernelKey {
        KernelKey {
            op: KernelOp::Ntt,
            n: self.n,
            q: self.q,
            direction: self.direction,
            style: self.style,
            param: 0,
        }
    }

    fn generate(&self) -> Result<Kernel, CodegenError> {
        NttKernel::generate(self.n, self.q, self.direction, self.style).map(Kernel::from)
    }
}

impl From<NttKernel> for Kernel {
    /// Wraps a generated NTT kernel in the uniform [`Kernel`] contract.
    fn from(ntt: NttKernel) -> Self {
        let n = ntt.degree();
        let key = KernelKey {
            op: KernelOp::Ntt,
            n,
            q: ntt.modulus(),
            direction: ntt.direction(),
            style: ntt.style(),
            param: 0,
        };
        // A zero input leaves exactly the constant tables (twiddles) in
        // the image; the input range is re-filled per execution.
        let base_image = ntt.vdm_image(&vec![0u128; n]);
        let sdm = ntt.sdm_image();
        let output_range = ntt.output_range();
        let schedule = ntt.schedule().clone();
        let direction = ntt.direction();
        let golden: GoldenFn = Box::new(move |ops: &[&[u128]]| match direction {
            Direction::Forward => schedule.forward(ops[0]),
            Direction::Inverse => schedule.inverse(ops[0]),
        });
        Kernel::new(
            key,
            ntt.into_program(),
            base_image,
            sdm,
            vec![(0, n)],
            output_range,
            golden,
        )
    }
}

/// Appends `src`'s instructions to `dst` with every VDM reference
/// shifted by `vdm_delta` elements. SDM references (`sload`/`mload`/
/// `aload`) are left untouched — pipeline segments share one scalar
/// constant block. Generated kernels address memory as `a0 + offset`
/// with `a0 = 0`, so shifting the static offsets relocates the segment.
pub(crate) fn push_relocated(dst: &mut Program, src: &Program, vdm_delta: usize) {
    let delta = vdm_delta as u32;
    for instr in src.instructions() {
        let shifted = match *instr {
            Instruction::VLoad {
                vd,
                base,
                offset,
                mode,
            } => Instruction::VLoad {
                vd,
                base,
                offset: offset + delta,
                mode,
            },
            Instruction::VStore {
                vs,
                base,
                offset,
                mode,
            } => Instruction::VStore {
                vs,
                base,
                offset: offset + delta,
                mode,
            },
            Instruction::VBroadcast { vd, base, offset } => Instruction::VBroadcast {
                vd,
                base,
                offset: offset + delta,
            },
            Instruction::VGather {
                vd,
                base,
                offset,
                vi,
            } => Instruction::VGather {
                vd,
                base,
                offset: offset + delta,
                vi,
            },
            other => other,
        };
        dst.push(shifted);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prime(n: usize) -> u128 {
        rpu_arith::find_ntt_prime_u128(126, 2 * n as u128).expect("prime exists")
    }

    #[test]
    fn ntt_spec_round_trips_through_kernel_contract() {
        let n = 1024usize;
        let spec = NttSpec::new(n, prime(n), Direction::Forward, CodegenStyle::Optimized);
        let kernel = spec.generate().unwrap();
        assert_eq!(kernel.arity(), 1);
        assert_eq!(kernel.degree(), n);
        assert_eq!(kernel.key(), spec.key());
        assert!(kernel.verify().unwrap());
    }

    #[test]
    fn kernel_matches_legacy_ntt_kernel() {
        let n = 1024usize;
        let q = prime(n);
        let legacy =
            NttKernel::generate(n, q, Direction::Inverse, CodegenStyle::Optimized).unwrap();
        let input: Vec<u128> = (0..n as u128).map(|i| (i * 31 + 5) % q).collect();
        let expect_img = legacy.vdm_image(&input);
        let expect_out = legacy.expected_output(&input);
        let (off, len) = legacy.output_range();
        let kernel = Kernel::from(legacy);
        assert_eq!(kernel.vdm_image(&[&input]), expect_img);
        assert_eq!(kernel.expected_output(&[&input]), expect_out);
        assert_eq!(kernel.output_range(), (off, len));
    }

    #[test]
    fn engine_selection_follows_modulus_width() {
        let n = 1024usize;
        let wide = NttSpec::new(n, prime(n), Direction::Forward, CodegenStyle::Optimized)
            .generate()
            .unwrap();
        assert_eq!(wide.engine(), EngineKind::Montgomery128);
        let q59 = rpu_arith::find_ntt_prime_u64(59, 2 * n as u64).expect("prime exists");
        let narrow = NttSpec::new(n, q59 as u128, Direction::Forward, CodegenStyle::Optimized)
            .generate()
            .unwrap();
        assert_eq!(narrow.engine(), EngineKind::NativeU64);
    }

    #[test]
    fn sdm_images_carry_engine_companions() {
        let n = 1024usize;
        // Wide modulus: slot 2 is the Montgomery form of n^{-1}.
        let q = prime(n);
        let kernel = NttSpec::new(n, q, Direction::Inverse, CodegenStyle::Optimized)
            .generate()
            .unwrap();
        let sdm = kernel.sdm_image();
        let m = Modulus128::new(q).unwrap();
        assert_eq!(sdm[1], q);
        assert_eq!(sdm[2], m.to_mont(sdm[0]));
        // Narrow modulus: slot 2 is the Shoup quotient of n^{-1}.
        let q59 = rpu_arith::find_ntt_prime_u64(59, 2 * n as u64).expect("prime exists");
        let kernel = NttSpec::new(n, q59 as u128, Direction::Inverse, CodegenStyle::Optimized)
            .generate()
            .unwrap();
        let sdm = kernel.sdm_image();
        let m64 = Modulus64::new(q59).unwrap();
        assert_eq!(sdm[2], m64.shoup(sdm[0] as u64) as u128);
        // The companion actually multiplies correctly.
        assert_eq!(
            m64.mul_shoup(12345, sdm[0] as u64, sdm[2] as u64),
            m64.mul(12345, sdm[0] as u64)
        );
    }

    #[test]
    fn relocation_shifts_only_vdm_references() {
        let p = rpu_isa::parse_asm(
            "r",
            "mload m0, [a0 + 1]\n\
             vload v0, [a0 + 16], unit\n\
             vstore v0, [a0 + 32], unit",
        )
        .unwrap();
        let mut out = Program::new("out");
        push_relocated(&mut out, &p, 1000);
        let asm = out.to_asm();
        assert!(asm.contains("mload   m0, [a0 + 1]"), "asm: {asm}");
        assert!(asm.contains("[a0 + 1016]"), "asm: {asm}");
        assert!(asm.contains("[a0 + 1032]"), "asm: {asm}");
    }
}
