//! The fused key-switch digit kernel: `acc' = NTT(d) ⊙ k̂ ⊕ acc`.
//!
//! Gadget-decomposed key switching (relinearization after a
//! ciphertext×ciphertext multiply, and the tail of every Galois
//! rotation) is an inner product over gadget digits: the switched
//! component is `Σ_j NTT(d_j) ⊙ k̂_j` for coefficient-domain digits
//! `d_j` and resident evaluation-form key components `k̂_j`. One digit's
//! contribution is exactly the fusion this kernel compiles into a single
//! B512 program:
//!
//! ```text
//! VDM:  [ fwd-NTT window: d in, d̂ out ][ k̂ ][ acc ][ d̂·k̂ ][ out ]
//! ```
//!
//! forward NTT of the digit → pointwise multiply by the key component →
//! pointwise add into the running accumulator. The session dispatches it
//! `ℓ` times per switched component (once per digit), which is what the
//! multi-lane scheduler shards: every digit is independent work.

use crate::elementwise::emit_pointwise;
use crate::kernel::{push_relocated, GoldenFn, Kernel, KernelKey, KernelOp, KernelSpec};
use crate::sched::list_schedule;
use crate::{CodegenError, CodegenStyle, Direction, ElementwiseOp, NttKernel};
use rpu_isa::consts::VDM_MAX_BYTES;
use rpu_isa::Program;

/// Specification of one fused key-switch digit step over
/// `Z_q[x]/(x^n + 1)`: operands are the digit's natural-order
/// coefficients, the evaluation-form key component, and the
/// evaluation-form accumulator; the output is the updated accumulator.
///
/// # Examples
///
/// ```
/// use rpu_codegen::{CodegenStyle, KernelSpec, KeySwitchSpec};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let q = rpu_arith::find_ntt_prime_u128(126, 2048).expect("prime exists");
/// let kernel = KeySwitchSpec::new(1024, q, CodegenStyle::Optimized).generate()?;
/// assert_eq!(kernel.arity(), 3);
/// assert!(kernel.verify()?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct KeySwitchSpec {
    /// Ring degree (power of two ≥ 1024).
    pub n: usize,
    /// Prime modulus with `q ≡ 1 (mod 2n)`.
    pub q: u128,
    /// Code-generation style applied to every segment.
    pub style: CodegenStyle,
}

impl KeySwitchSpec {
    /// Creates a key-switch digit spec.
    pub fn new(n: usize, q: u128, style: CodegenStyle) -> Self {
        KeySwitchSpec { n, q, style }
    }
}

impl KernelSpec for KeySwitchSpec {
    fn key(&self) -> KernelKey {
        KernelKey {
            op: KernelOp::KeySwitch,
            n: self.n,
            q: self.q,
            direction: Direction::Forward,
            style: self.style,
            param: 0,
        }
    }

    fn generate(&self) -> Result<Kernel, CodegenError> {
        let KeySwitchSpec { n, q, style } = *self;
        let fwd = NttKernel::generate(n, q, Direction::Forward, style)?;
        let w = fwd.layout().total_elements;
        // Extra regions above the NTT window; every stage reads and
        // writes disjoint ranges so the list scheduler stays honest.
        let (key_off, acc_off, prod_off, out_off) = (w, w + n, w + 2 * n, w + 3 * n);
        let total = w + 4 * n;
        if total * rpu_isa::consts::ELEM_BYTES > VDM_MAX_BYTES {
            return Err(CodegenError::WorkingSetTooLarge {
                bytes: total * rpu_isa::consts::ELEM_BYTES,
            });
        }

        let (fwd_out, _) = fwd.output_range();
        let mut program = Program::new(format!("keyswitch{n}_{style}"));
        // Forward transform of the digit (window 0); its prologue leaves
        // q in m0 for the pointwise stages.
        push_relocated(&mut program, fwd.program(), 0);
        program = stage(
            program,
            n,
            style,
            ElementwiseOp::MulMod,
            fwd_out,
            key_off,
            prod_off,
        );
        program = stage(
            program,
            n,
            style,
            ElementwiseOp::AddMod,
            prod_off,
            acc_off,
            out_off,
        );

        let mut base_image = vec![0u128; total];
        base_image[..w].copy_from_slice(&fwd.vdm_image(&vec![0u128; n]));

        let schedule = fwd.schedule().clone();
        let modulus = schedule.modulus();
        let golden: GoldenFn = Box::new(move |ops: &[&[u128]]| {
            let hat = schedule.forward(ops[0]);
            hat.iter()
                .zip(ops[1])
                .zip(ops[2])
                .map(|((&d, &k), &a)| {
                    modulus.add(modulus.mul(d, modulus.reduce(k)), modulus.reduce(a))
                })
                .collect()
        });
        Ok(Kernel::new(
            self.key(),
            program,
            base_image,
            fwd.sdm_image(), // [n_inv, q, companion(n_inv)], shared slot convention
            vec![(0, n), (key_off, n), (acc_off, n)],
            (out_off, n),
            golden,
        ))
    }
}

/// Appends one pointwise stage, scheduled in isolation so the list
/// scheduler never reorders across the barrier between segments (the
/// same discipline as the fused convolution pipeline).
fn stage(
    mut program: Program,
    n: usize,
    style: CodegenStyle,
    op: ElementwiseOp,
    a_src: usize,
    b_src: usize,
    dst: usize,
) -> Program {
    let mut seg = Program::new("stage");
    emit_pointwise(&mut seg, op, n, style, a_src, b_src, dst);
    if style != CodegenStyle::Unoptimized {
        seg = list_schedule(&seg);
    }
    push_relocated(&mut program, &seg, 0);
    program
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpu_ntt::PeaseSchedule;

    fn prime(n: usize) -> u128 {
        rpu_arith::find_ntt_prime_u128(126, 2 * n as u128).expect("prime exists")
    }

    #[test]
    fn verifies_against_golden_model() {
        let n = 1024usize;
        for style in [CodegenStyle::Optimized, CodegenStyle::Unoptimized] {
            let kernel = KeySwitchSpec::new(n, prime(n), style).generate().unwrap();
            assert!(kernel.verify().unwrap(), "{style:?}");
            assert_eq!(kernel.arity(), 3);
        }
    }

    #[test]
    fn computes_ntt_multiply_accumulate() {
        let n = 1024usize;
        let q = prime(n);
        let kernel = KeySwitchSpec::new(n, q, CodegenStyle::Optimized)
            .generate()
            .unwrap();
        let m = rpu_arith::Modulus128::new(q).unwrap();
        let d: Vec<u128> = (0..n as u128).map(|i| (i * 17 + 1) % q).collect();
        let k: Vec<u128> = (0..n as u128).map(|i| (i * 29 + 2) % q).collect();
        let acc: Vec<u128> = (0..n as u128).map(|i| (i * 41 + 3) % q).collect();
        let got = kernel.execute(&[&d, &k, &acc]).unwrap();
        let sched = PeaseSchedule::new(n, q).unwrap();
        let hat = sched.forward(&d);
        for i in (0..n).step_by(97) {
            assert_eq!(got[i], m.add(m.mul(hat[i], k[i]), acc[i]), "lane {i}");
        }
    }

    #[test]
    fn accumulation_chain_is_exact() {
        // Three dispatches chained through the accumulator equal the
        // host-side sum of three digit products — the relinearization
        // inner product in miniature.
        let n = 1024usize;
        let q = prime(n);
        let m = rpu_arith::Modulus128::new(q).unwrap();
        let kernel = KeySwitchSpec::new(n, q, CodegenStyle::Optimized)
            .generate()
            .unwrap();
        let sched = PeaseSchedule::new(n, q).unwrap();
        let digit = |s: u128| -> Vec<u128> { (0..n as u128).map(|i| (i * s + 5) % q).collect() };
        let key = |s: u128| -> Vec<u128> { (0..n as u128).map(|i| (i + s) % q).collect() };
        let mut acc = vec![0u128; n];
        let mut expect = vec![0u128; n];
        for j in 0..3u128 {
            let d = digit(j + 2);
            let k = key(j * 7 + 1);
            acc = kernel.execute(&[&d, &k, &acc]).unwrap();
            let hat = sched.forward(&d);
            for i in 0..n {
                expect[i] = m.add(expect[i], m.mul(hat[i], k[i]));
            }
        }
        assert_eq!(acc, expect);
    }
}
