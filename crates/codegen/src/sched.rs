//! Greedy list scheduler — the final pass of the optimized flow
//! (Section V: "we used a greedy instruction scheduler to detect any
//! easily-achieved low-level optimization").
//!
//! Builds the exact dependence DAG (register RAW/WAR/WAW across all four
//! register files, plus memory ordering between overlapping VDM
//! transfers) and re-emits the program in a topological order that
//! round-robins across the three backend pipelines. Interleaving
//! independent LSI/CI/SI chains keeps all three decoupled queues fed,
//! which is precisely what the in-order busyboard frontend needs.

use rpu_isa::consts::VECTOR_LEN;
use rpu_isa::{Instruction, PipeClass, Program};
use rpu_sim::{CycleSim, RpuConfig};

/// Reschedules a program, preserving semantics exactly.
///
/// Every dependence (through registers or through VDM memory, resolving
/// address bases as 0 per the generated-kernel convention) is an edge in
/// the DAG; the output is a topological order, so any program the
/// functional simulator accepts produces identical results after
/// scheduling.
pub fn list_schedule(program: &Program) -> Program {
    let instrs = program.instructions();
    let n = instrs.len();
    let mut succs: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut indeg: Vec<u32> = vec![0; n];

    let add_edge = |succs: &mut Vec<Vec<u32>>, indeg: &mut Vec<u32>, from: usize, to: usize| {
        // self-dependences (e.g. a bfly writing the same register twice)
        // are vacuous; duplicate edges from the same producer are skipped
        // with a cheap last-pushed check
        if from == to {
            return;
        }
        debug_assert!(from < to);
        if succs[from].last() != Some(&(to as u32)) {
            succs[from].push(to as u32);
            indeg[to] += 1;
        }
    };

    // Register dependence tracking: 4 files x 64 regs.
    const NREGS: usize = 256;
    let mut last_writer: [Option<usize>; NREGS] = [None; NREGS];
    let mut readers_since: Vec<Vec<usize>> = vec![Vec::new(); NREGS];

    // Memory dependence tracking over VDM footprints.
    let mut mem_ops: Vec<(MemFootprint, bool, usize)> = Vec::new(); // (access, is_store, idx)

    for (i, instr) in instrs.iter().enumerate() {
        for r in reg_srcs(instr) {
            if let Some(w) = last_writer[r] {
                add_edge(&mut succs, &mut indeg, w, i); // RAW
            }
            readers_since[r].push(i);
        }
        for r in reg_dsts(instr) {
            if let Some(w) = last_writer[r] {
                add_edge(&mut succs, &mut indeg, w, i); // WAW
            }
            for &rd in &readers_since[r] {
                if rd != i {
                    add_edge(&mut succs, &mut indeg, rd, i); // WAR
                }
            }
            readers_since[r].clear();
            last_writer[r] = Some(i);
        }
        if let Some((acc, is_store)) = mem_access(instr) {
            for &(prev, pstore, pidx) in &mem_ops {
                if (is_store || pstore) && acc.conflicts(&prev) {
                    add_edge(&mut succs, &mut indeg, pidx, i);
                }
            }
            mem_ops.push((acc, is_store, i));
        }
    }

    // Greedy *time-aware* emission: simulate the in-order busyboard
    // frontend against a reference timing model (the paper's (128,128)
    // design point) and, at each step, emit the ready instruction that
    // the frontend could dispatch soonest. Ties break toward the
    // original program order, so a well-pipelined input is preserved and
    // a naive one is repaired.
    let mut ready: Vec<usize> = Vec::new();
    for (i, &d) in indeg.iter().enumerate() {
        if d == 0 {
            ready.push(i);
        }
    }
    // data_ready[i]: estimated cycle all producers of i have completed.
    let mut data_ready: Vec<u64> = vec![0; n];
    let mut unit_free = [0u64; 4]; // load, store, compute, shuffle
    let mut out = Program::new(program.name().to_string());
    let mut t: u64 = 0;
    let mut emitted = 0usize;
    while emitted < n {
        // pick the ready instruction with the earliest dispatchable time
        let (pos, &i) = ready
            .iter()
            .enumerate()
            .min_by_key(|&(_, &i)| (data_ready[i].max(t), i))
            .expect("DAG must not deadlock: program order is a valid topo order");
        ready.swap_remove(pos);
        let dispatch = data_ready[i].max(t);
        let (unit, occ, lat) = ref_timing(&instrs[i]);
        let issue = (dispatch + 1).max(unit_free[unit]);
        unit_free[unit] = issue + occ;
        let done = issue + occ + lat;
        out.push(instrs[i]);
        emitted += 1;
        t = dispatch + 1;
        for &s in &succs[i] {
            let s = s as usize;
            data_ready[s] = data_ready[s].max(done);
            indeg[s] -= 1;
            if indeg[s] == 0 {
                ready.push(s);
            }
        }
    }

    // The greedy heuristic approximates the machine with `ref_timing`
    // and is not globally optimal, so it can occasionally disturb an
    // input that was already well pipelined. Score both orders under
    // the real (128, 128) reference machine and keep the faster one:
    // scheduling then never regresses *on the reference config* (other
    // geometries may still prefer the original order). The two extra
    // simulations are single-pass and cheap next to kernel emission.
    let sim = CycleSim::new(RpuConfig::pareto_128x128()).expect("reference config is valid");
    if sim.simulate(&out).cycles <= sim.simulate(program).cycles {
        out
    } else {
        program.clone()
    }
}

/// Reference timing used for scheduling decisions: the (128, 128) design
/// point with default IP latencies. `(unit, occupancy, latency)`.
fn ref_timing(instr: &Instruction) -> (usize, u64, u64) {
    const LANE_CYCLES: u64 = 4; // 512 lanes / 128 HPLEs
    match instr.pipe_class() {
        PipeClass::LoadStore => {
            let is_store = matches!(instr, Instruction::VStore { .. });
            let occ = match instr {
                Instruction::SLoad { .. }
                | Instruction::MLoad { .. }
                | Instruction::ALoad { .. } => 1,
                _ => LANE_CYCLES,
            };
            (if is_store { 1 } else { 0 }, occ, 4)
        }
        PipeClass::Compute => {
            let lat = if instr.uses_multiplier() { 6 } else { 2 };
            (2, LANE_CYCLES, lat)
        }
        PipeClass::Shuffle => (3, LANE_CYCLES, 4),
    }
}

fn reg_srcs(instr: &Instruction) -> impl Iterator<Item = usize> + '_ {
    let v = instr
        .src_vregs()
        .into_iter()
        .flatten()
        .map(|r| r.index() as usize);
    let s = instr.src_sreg().map(|r| 64 + r.index() as usize);
    let a = instr.src_areg().map(|r| 128 + r.index() as usize);
    let m = instr.src_mreg().map(|r| 192 + r.index() as usize);
    v.chain(s).chain(a).chain(m)
}

fn reg_dsts(instr: &Instruction) -> impl Iterator<Item = usize> + '_ {
    let v = instr
        .dst_vregs()
        .into_iter()
        .flatten()
        .map(|r| r.index() as usize);
    let s = instr.dst_sreg().map(|r| 64 + r.index() as usize);
    let a = instr.dst_areg().map(|r| 128 + r.index() as usize);
    let m = instr.dst_mreg().map(|r| 192 + r.index() as usize);
    v.chain(s).chain(a).chain(m)
}

/// A VDM access footprint (base resolved as 0).
#[derive(Debug, Clone, Copy)]
struct MemFootprint {
    lo: usize,
    hi: usize,
    offset: usize,
    mode: rpu_isa::AddrMode,
}

impl MemFootprint {
    /// May-alias check; equal-stride accesses with incongruent bases are
    /// exactly disjoint (interleaved element sets).
    fn conflicts(&self, other: &MemFootprint) -> bool {
        if self.hi <= other.lo || other.hi <= self.lo {
            return false;
        }
        if let (
            rpu_isa::AddrMode::Strided { log2_stride: s1 },
            rpu_isa::AddrMode::Strided { log2_stride: s2 },
        ) = (self.mode, other.mode)
        {
            if s1 == s2 {
                let stride = 1usize << s1;
                return self.offset % stride == other.offset % stride;
            }
        }
        true
    }
}

/// `(footprint, is_store)` for VDM transfers, base resolved as 0.
fn mem_access(instr: &Instruction) -> Option<(MemFootprint, bool)> {
    let footprint = |offset: u32, mode: rpu_isa::AddrMode| {
        let last = mode.element_offset(VECTOR_LEN - 1);
        let first = mode.element_offset(0);
        MemFootprint {
            lo: offset as usize + first.min(last),
            hi: offset as usize + first.max(last) + 1,
            offset: offset as usize,
            mode,
        }
    };
    match *instr {
        Instruction::VLoad { offset, mode, .. } => Some((footprint(offset, mode), false)),
        Instruction::VStore { offset, mode, .. } => Some((footprint(offset, mode), true)),
        Instruction::VBroadcast { offset, .. } => {
            Some((footprint(offset, rpu_isa::AddrMode::Unit), false))
        }
        // Indexed loads read data-dependent addresses: give them a
        // whole-VDM footprint so the scheduler never reorders one across
        // any store. (Within generated automorphism kernels the index
        // tables are constants, but the DAG cannot see that.)
        Instruction::VGather { offset, .. } => Some((
            MemFootprint {
                lo: 0,
                hi: usize::MAX,
                offset: offset as usize,
                mode: rpu_isa::AddrMode::Unit,
            },
            false,
        )),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpu_isa::parse_asm;

    #[test]
    fn preserves_dependences() {
        let p = parse_asm(
            "dep",
            "vload v0, [a0 + 0], unit\n\
             vmulmod v1, v0, v0, m0\n\
             vstore v1, [a0 + 512], unit\n\
             vload v2, [a0 + 512], unit\n",
        )
        .unwrap();
        let s = list_schedule(&p);
        let pos = |needle: &str| {
            s.instructions()
                .iter()
                .position(|i| i.to_string().starts_with(needle))
                .unwrap()
        };
        assert!(pos("vload   v0") < pos("vmulmod"));
        assert!(pos("vmulmod") < pos("vstore"));
        // RAW through memory: the second load reads what the store wrote
        assert!(pos("vstore") < pos("vload   v2"));
    }

    #[test]
    fn hoists_independent_work_over_stalls() {
        // The multiply that depends on the load would stall the frontend;
        // the independent multiply should be hoisted in front of it.
        let p = parse_asm(
            "il",
            "vload v0, [a0 + 0], unit\n\
             vmulmod v1, v0, v0, m0\n\
             vmulmod v3, v10, v11, m0\n",
        )
        .unwrap();
        let s = list_schedule(&p);
        let order: Vec<String> = s.instructions().iter().map(|i| i.to_string()).collect();
        let dep = order.iter().position(|x| x.contains("v1,")).unwrap();
        let indep = order.iter().position(|x| x.contains("v3,")).unwrap();
        assert!(indep < dep, "independent mul must come first: {order:?}");
    }

    #[test]
    fn emits_every_instruction_exactly_once() {
        let p = parse_asm(
            "all",
            "vload v0, [a0 + 0], unit\n\
             vaddmod v1, v0, v0, m0\n\
             unpklo v2, v1, v1\n\
             vstore v2, [a0 + 512], unit\n",
        )
        .unwrap();
        let s = list_schedule(&p);
        assert_eq!(s.len(), p.len());
        let mut a: Vec<String> = p.instructions().iter().map(|i| i.to_string()).collect();
        let mut b: Vec<String> = s.instructions().iter().map(|i| i.to_string()).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn war_respected() {
        // store reads v0, then v0 is overwritten: overwrite must stay after
        let p = parse_asm(
            "war",
            "vstore v0, [a0 + 0], unit\n\
             vload v0, [a0 + 512], unit\n",
        )
        .unwrap();
        let s = list_schedule(&p);
        assert_eq!(s.instructions()[0].mnemonic(), "vstore");
    }
}
