//! The NTT kernel generators — our stand-in for the paper's SPIRAL
//! backend (Section V).
//!
//! Two program flavours are produced for every (n, direction):
//!
//! * [`CodegenStyle::Unoptimized`] — block-sequential emission through a
//!   fixed 8-register window, reloading twiddles every block. This is
//!   the "program with no knowledge of the RPU micro-architecture" of
//!   Fig. 6: register reuse creates busyboard WAR/WAW stalls and the
//!   decoupled pipelines starve.
//! * [`CodegenStyle::Optimized`] — the hardware-aware program: precise
//!   live-range register allocation over a 47-register pool (renaming),
//!   per-stage twiddle caching in dedicated registers, and a software
//!   pipeline that issues the loads of butterfly group `g+1` before the
//!   compute/shuffle/store phase of group `g` — the "rectangles"
//!   decomposition of Section V — followed by a greedy time-aware list
//!   scheduling pass.

use crate::layout::KernelLayout;
use crate::sched::list_schedule;
use crate::{CodegenError, CodegenStyle, Direction};
use rpu_isa::consts::{VDM_MAX_BYTES, VECTOR_LEN};
use rpu_isa::{AReg, AddrMode, Instruction, MReg, Program, SReg, VReg};
use rpu_ntt::PeaseSchedule;
use std::collections::VecDeque;

/// How many distinct twiddle vectors a stage may cache in registers.
const TW_CACHE_MAX: usize = 16;
/// First register of the twiddle cache window (v48..v63).
const TW_CACHE_BASE: u8 = 48;
/// Software-pipeline group size (butterfly blocks per "rectangle").
const GROUP: usize = 4;

/// A generated NTT kernel: program plus memory images and metadata.
#[derive(Debug, Clone)]
pub struct NttKernel {
    program: Program,
    layout: KernelLayout,
    schedule: PeaseSchedule,
    direction: Direction,
    style: CodegenStyle,
}

/// The base address register all kernels use (host sets it to relocate).
const BASE: AReg = AReg::at(0);
/// The modulus register all kernels use.
const MOD: MReg = MReg::at(0);
/// Scalar register holding `n^{-1}` for inverse kernels.
const NINV: SReg = SReg::at(0);

/// Free-list register allocator with precise live ranges: values are
/// freed after their last consumer is emitted, and the FIFO free list
/// maximizes reuse distance so busyboard WAR stalls stay short.
#[derive(Debug)]
pub(crate) struct RegPool {
    free: VecDeque<VReg>,
}

impl RegPool {
    pub(crate) fn new(lo: u8, hi: u8) -> Self {
        RegPool {
            free: (lo..hi).map(VReg::at).collect(),
        }
    }

    pub(crate) fn alloc(&mut self) -> VReg {
        self.free
            .pop_front()
            .expect("register pool exhausted: GROUP sized beyond capacity")
    }

    pub(crate) fn release(&mut self, r: VReg) {
        self.free.push_back(r);
    }
}

impl NttKernel {
    /// Generates a kernel for ring degree `n` (power of two, ≥ 1024 so a
    /// butterfly block fills the 512-lane vectors) and prime `q ≡ 1
    /// (mod 2n)`.
    ///
    /// # Errors
    ///
    /// Returns [`CodegenError`] for unsupported degrees/moduli or if the
    /// working set would not fit the 32 MiB architectural VDM.
    pub fn generate(
        n: usize,
        q: u128,
        direction: Direction,
        style: CodegenStyle,
    ) -> Result<Self, CodegenError> {
        if n < 2 * VECTOR_LEN || !n.is_power_of_two() {
            return Err(CodegenError::UnsupportedDegree(n));
        }
        let schedule = PeaseSchedule::new(n, q)?;
        let stages = schedule.stages();
        let twiddle_counts: Vec<usize> = (0..stages)
            .map(|s| ((1usize << s) / VECTOR_LEN).max(1))
            .collect();
        let layout = KernelLayout::new(n, twiddle_counts);
        if layout.total_bytes() > VDM_MAX_BYTES {
            return Err(CodegenError::WorkingSetTooLarge {
                bytes: layout.total_bytes(),
            });
        }
        let mut kernel = NttKernel {
            program: Program::new(format!("ntt{}x{}_{}_{}", n, VECTOR_LEN, direction, style)),
            layout,
            schedule,
            direction,
            style,
        };
        match (direction, style) {
            (Direction::Forward, CodegenStyle::Unoptimized) => kernel.emit_forward_unoptimized(),
            (Direction::Forward, _) => kernel.emit_forward_optimized(),
            (Direction::Inverse, CodegenStyle::Unoptimized) => kernel.emit_inverse_unoptimized(),
            (Direction::Inverse, _) => kernel.emit_inverse_optimized(),
        }
        if style != CodegenStyle::Unoptimized {
            kernel.program = list_schedule(&kernel.program);
        }
        Ok(kernel)
    }

    /// The generated B512 program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Consumes the kernel, yielding the program without a clone.
    pub fn into_program(self) -> Program {
        self.program
    }

    /// The VDM layout.
    pub fn layout(&self) -> &KernelLayout {
        &self.layout
    }

    /// The underlying constant-geometry schedule.
    pub fn schedule(&self) -> &PeaseSchedule {
        &self.schedule
    }

    /// Transform direction.
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// Codegen style.
    pub fn style(&self) -> CodegenStyle {
        self.style
    }

    /// Ring degree.
    pub fn degree(&self) -> usize {
        self.layout.n
    }

    /// The modulus.
    pub fn modulus(&self) -> u128 {
        self.schedule.modulus().value()
    }

    /// Builds the initial VDM image for an input polynomial: input in
    /// buffer A, twiddle tables in place, everything else zero.
    ///
    /// Forward kernels take natural-order coefficients; inverse kernels
    /// take Pease-ordered evaluations.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != self.degree()`.
    pub fn vdm_image(&self, input: &[u128]) -> Vec<u128> {
        assert_eq!(input.len(), self.layout.n, "input length must equal n");
        let mut image = vec![0u128; self.layout.total_elements];
        image[..self.layout.n].copy_from_slice(input);
        for s in 0..self.schedule.stages() {
            let vectors = match self.direction {
                Direction::Forward => self.schedule.twiddle_vectors(s, VECTOR_LEN),
                Direction::Inverse => self.schedule.twiddle_inv_vectors(s, VECTOR_LEN),
            };
            for (v, vector) in vectors.iter().enumerate() {
                let base = self.layout.twiddle_vector_offset(s, v);
                image[base..base + VECTOR_LEN].copy_from_slice(vector);
            }
        }
        image
    }

    /// Builds the SDM image: `[n^{-1}, q, companion(n^{-1})]`.
    ///
    /// Slot 2 is the engine companion of the final-scale constant
    /// (`crate::kernel::scalar_companion`): the Shoup quotient of
    /// `n^{-1}` for sub-63-bit moduli, its Montgomery form otherwise.
    /// The generated programs only ever read slots 0 and 1; the
    /// companion rides along so the image is complete for a hardware
    /// lane engine. Fused kernels append further scalars after it.
    pub fn sdm_image(&self) -> Vec<u128> {
        let q = self.schedule.modulus().value();
        let n_inv = self.schedule.n_inv();
        vec![n_inv, q, crate::kernel::scalar_companion(q, n_inv)]
    }

    /// Where the kernel's output lives in the VDM (element offset, length).
    pub fn output_range(&self) -> (usize, usize) {
        (self.layout.output_offset, self.layout.n)
    }

    /// Golden output for a given input, from the scalar schedule.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != self.degree()`.
    pub fn expected_output(&self, input: &[u128]) -> Vec<u128> {
        match self.direction {
            Direction::Forward => self.schedule.forward(input),
            Direction::Inverse => self.schedule.inverse(input),
        }
    }

    // ------------------------------------------------------------------
    // emission helpers
    // ------------------------------------------------------------------

    fn push(&mut self, i: Instruction) {
        self.program.push(i);
    }

    fn prologue(&mut self) {
        // MRF[0] <- q, SRF[0] <- n^{-1}; SDM image is
        // [n_inv, q, companion(n_inv)].
        self.push(Instruction::MLoad {
            rt: MOD,
            base: BASE,
            offset: 1,
        });
        if self.direction == Direction::Inverse {
            self.push(Instruction::SLoad {
                rt: NINV,
                base: BASE,
                offset: 0,
            });
        }
    }

    /// Number of 512-pair butterfly blocks per stage.
    fn blocks(&self) -> usize {
        self.layout.n / (2 * VECTOR_LEN)
    }

    fn load_instr(vd: VReg, offset: usize) -> Instruction {
        Instruction::VLoad {
            vd,
            base: BASE,
            offset: offset as u32,
            mode: AddrMode::Unit,
        }
    }

    fn store_instr(vs: VReg, offset: usize) -> Instruction {
        Instruction::VStore {
            vs,
            base: BASE,
            offset: offset as u32,
            mode: AddrMode::Unit,
        }
    }

    /// Loads the per-stage twiddle cache; returns the cache registers
    /// (empty when the stage has too many distinct vectors to cache).
    fn load_twiddle_cache(&mut self, s: u32, broadcast_stage0: bool) -> Vec<VReg> {
        let count = self.layout.twiddle_counts[s as usize];
        if count > TW_CACHE_MAX {
            return Vec::new();
        }
        (0..count)
            .map(|v| {
                let reg = VReg::at(TW_CACHE_BASE + v as u8);
                let off = self.layout.twiddle_vector_offset(s, v);
                let instr = if s == 0 && broadcast_stage0 {
                    // stage 0 has a single scalar twiddle: exercise the
                    // broadcast path like Listing 1 does
                    Instruction::VBroadcast {
                        vd: reg,
                        base: BASE,
                        offset: off as u32,
                    }
                } else {
                    Self::load_instr(reg, off)
                };
                self.push(instr);
                reg
            })
            .collect()
    }

    /// Emits the twiddle fetch for (stage, block): `(register, pooled?)`.
    fn fetch_twiddle(
        &mut self,
        s: u32,
        block: usize,
        cached: &[VReg],
        pool: &mut RegPool,
    ) -> (VReg, bool) {
        let v = self.schedule.twiddle_vector_index(s, block, VECTOR_LEN);
        if !cached.is_empty() {
            (cached[v], false)
        } else {
            let reg = pool.alloc();
            let off = self.layout.twiddle_vector_offset(s, v);
            self.push(Self::load_instr(reg, off));
            (reg, true)
        }
    }

    // ------------------------------------------------------------------
    // forward kernels
    // ------------------------------------------------------------------

    fn emit_forward_optimized(&mut self) {
        self.emit_forward(true);
    }

    /// Emits the forward kernel. With `pipelined = true` (the optimized
    /// program), loads of butterfly group `g+1` are dispatched before the
    /// compute/shuffle/store phase of group `g`; without it (the Fig. 6
    /// baseline) each group is emitted in plain dependency order and the
    /// in-order frontend stalls on every chain.
    fn emit_forward(&mut self, pipelined: bool) {
        self.prologue();
        let half = self.layout.n / 2;
        let blocks = self.blocks();
        let mut pool = RegPool::new(1, TW_CACHE_BASE);
        for s in 0..self.schedule.stages() {
            let (inb, outb) = self.layout.stage_buffers(s);
            let cached = self.load_twiddle_cache(s, true);

            let mut prev: Option<Vec<FwdBlock>> = None;
            let mut m = 0;
            while m < blocks {
                let g = GROUP.min(blocks - m);
                let mut cur = Vec::with_capacity(g);
                for i in 0..g {
                    let blk = m + i;
                    let a = pool.alloc();
                    let b = pool.alloc();
                    self.push(Self::load_instr(a, inb + blk * VECTOR_LEN));
                    self.push(Self::load_instr(b, inb + half + blk * VECTOR_LEN));
                    let (tw, pooled) = self.fetch_twiddle(s, blk, &cached, &mut pool);
                    cur.push(FwdBlock {
                        a,
                        b,
                        tw,
                        pooled,
                        blk,
                    });
                }
                if pipelined {
                    if let Some(group) = prev.take() {
                        self.forward_compute_and_store(group, outb, &mut pool);
                    }
                    prev = Some(cur);
                } else {
                    self.forward_compute_and_store(cur, outb, &mut pool);
                }
                m += g;
            }
            if let Some(group) = prev.take() {
                self.forward_compute_and_store(group, outb, &mut pool);
            }
        }
    }

    /// Butterfly + interleave + store phase for one group of blocks.
    ///
    /// The `StridedMemory` ablation skips the SBAR entirely: butterfly
    /// halves go straight to the VDM with stride-2 stores, pushing the
    /// interleave work onto the banks.
    fn forward_compute_and_store(&mut self, group: Vec<FwdBlock>, outb: usize, pool: &mut RegPool) {
        let strided = self.style == CodegenStyle::StridedMemory;
        let mut outs = Vec::with_capacity(group.len());
        for FwdBlock {
            a,
            b,
            tw,
            pooled,
            blk,
        } in group
        {
            let lo = pool.alloc();
            let hi = pool.alloc();
            self.push(Instruction::Bfly {
                vd: lo,
                vd1: hi,
                vs: a,
                vt: b,
                vt1: tw,
                rm: MOD,
            });
            pool.release(a);
            pool.release(b);
            if pooled {
                pool.release(tw);
            }
            outs.push((lo, hi, blk));
        }
        if strided {
            for (lo, hi, blk) in outs {
                let base = outb + 2 * blk * VECTOR_LEN;
                // lo[i] -> base + 2i (positions 2j), hi[i] -> base + 1 + 2i
                self.push(Instruction::VStore {
                    vs: lo,
                    base: BASE,
                    offset: base as u32,
                    mode: AddrMode::Strided { log2_stride: 1 },
                });
                self.push(Instruction::VStore {
                    vs: hi,
                    base: BASE,
                    offset: (base + 1) as u32,
                    mode: AddrMode::Strided { log2_stride: 1 },
                });
                pool.release(lo);
                pool.release(hi);
            }
            return;
        }
        let mut stores = Vec::with_capacity(outs.len());
        for (lo, hi, blk) in outs {
            let u1 = pool.alloc();
            let u2 = pool.alloc();
            self.push(Instruction::UnpkLo {
                vd: u1,
                vs: lo,
                vt: hi,
            });
            self.push(Instruction::UnpkHi {
                vd: u2,
                vs: lo,
                vt: hi,
            });
            pool.release(lo);
            pool.release(hi);
            stores.push((u1, u2, blk));
        }
        for (u1, u2, blk) in stores {
            self.push(Self::store_instr(u1, outb + 2 * blk * VECTOR_LEN));
            self.push(Self::store_instr(u2, outb + (2 * blk + 1) * VECTOR_LEN));
            pool.release(u1);
            pool.release(u2);
        }
    }

    fn emit_forward_unoptimized(&mut self) {
        // The Fig. 6 baseline: the same SPIRAL computation — renamed
        // registers, cached twiddles — emitted in plain dependency order
        // with no knowledge of the microarchitecture: no software
        // pipelining and no list scheduling, so "the shuffle, like other
        // instructions, is always stalled waiting for the result of the
        // previous instruction".
        self.emit_forward(false);
    }

    // ------------------------------------------------------------------
    // inverse kernels
    // ------------------------------------------------------------------

    fn emit_inverse_optimized(&mut self) {
        self.emit_inverse(true);
    }

    /// Emits the inverse kernel; `pipelined` as in
    /// [`emit_forward`](Self::emit_forward).
    fn emit_inverse(&mut self, pipelined: bool) {
        self.prologue();
        let half = self.layout.n / 2;
        let blocks = self.blocks();
        let stages = self.schedule.stages();
        let mut pool = RegPool::new(1, TW_CACHE_BASE);
        for (pass, s) in (0..stages).rev().enumerate() {
            let (inb, outb) = self.layout.stage_buffers(pass as u32);
            let cached = self.load_twiddle_cache(s, false);

            let mut prev: Option<Vec<InvBlock>> = None;
            let mut m = 0;
            while m < blocks {
                let g = GROUP.min(blocks - m);
                let mut cur = Vec::with_capacity(g);
                for i in 0..g {
                    let blk = m + i;
                    let y1 = pool.alloc();
                    let y2 = pool.alloc();
                    let base = inb + 2 * blk * VECTOR_LEN;
                    if self.style == CodegenStyle::StridedMemory {
                        // gather even/odd positions directly from the VDM
                        self.push(Instruction::VLoad {
                            vd: y1,
                            base: BASE,
                            offset: base as u32,
                            mode: AddrMode::Strided { log2_stride: 1 },
                        });
                        self.push(Instruction::VLoad {
                            vd: y2,
                            base: BASE,
                            offset: (base + 1) as u32,
                            mode: AddrMode::Strided { log2_stride: 1 },
                        });
                    } else {
                        self.push(Self::load_instr(y1, base));
                        self.push(Self::load_instr(y2, base + VECTOR_LEN));
                    }
                    let (tw, pooled) = self.fetch_twiddle(s, blk, &cached, &mut pool);
                    cur.push(InvBlock {
                        y1,
                        y2,
                        tw,
                        pooled,
                        blk,
                    });
                }
                if pipelined {
                    if let Some(group) = prev.take() {
                        self.inverse_compute_and_store(group, outb, half, &mut pool);
                    }
                    prev = Some(cur);
                } else {
                    self.inverse_compute_and_store(cur, outb, half, &mut pool);
                }
                m += g;
            }
            if let Some(group) = prev.take() {
                self.inverse_compute_and_store(group, outb, half, &mut pool);
            }
        }
        self.emit_final_scale(&mut pool);
    }

    /// De-interleave + GS butterfly + store phase for one inverse group.
    fn inverse_compute_and_store(
        &mut self,
        group: Vec<InvBlock>,
        outb: usize,
        half: usize,
        pool: &mut RegPool,
    ) {
        let strided = self.style == CodegenStyle::StridedMemory;
        let mut split = Vec::with_capacity(group.len());
        for InvBlock {
            y1,
            y2,
            tw,
            pooled,
            blk,
        } in group
        {
            if strided {
                // strided loads already separated even/odd positions
                split.push((y1, y2, tw, pooled, blk));
                continue;
            }
            let ev = pool.alloc();
            let od = pool.alloc();
            self.push(Instruction::PkLo {
                vd: ev,
                vs: y1,
                vt: y2,
            });
            self.push(Instruction::PkHi {
                vd: od,
                vs: y1,
                vt: y2,
            });
            pool.release(y1);
            pool.release(y2);
            split.push((ev, od, tw, pooled, blk));
        }
        let mut outs = Vec::with_capacity(split.len());
        for (ev, od, tw, pooled, blk) in split {
            let u = pool.alloc();
            let d = pool.alloc();
            self.push(Instruction::VAddMod {
                vd: u,
                vs: ev,
                vt: od,
                rm: MOD,
            });
            self.push(Instruction::VSubMod {
                vd: d,
                vs: ev,
                vt: od,
                rm: MOD,
            });
            pool.release(ev);
            pool.release(od);
            let v = pool.alloc();
            self.push(Instruction::VMulMod {
                vd: v,
                vs: d,
                vt: tw,
                rm: MOD,
            });
            pool.release(d);
            if pooled {
                pool.release(tw);
            }
            outs.push((u, v, blk));
        }
        for (u, v, blk) in outs {
            self.push(Self::store_instr(u, outb + blk * VECTOR_LEN));
            self.push(Self::store_instr(v, outb + half + blk * VECTOR_LEN));
            pool.release(u);
            pool.release(v);
        }
    }

    fn emit_inverse_unoptimized(&mut self) {
        // Same philosophy as the forward baseline: plain dependency
        // order, no pipelining, no scheduling.
        self.emit_inverse(false);
    }

    /// Scales the output buffer by `n^{-1}` (SRF[0]) in place — the /n of
    /// the inverse transform, folded out of the per-stage butterflies.
    fn emit_final_scale(&mut self, pool: &mut RegPool) {
        let out = self.layout.output_offset;
        for v in 0..(self.layout.n / VECTOR_LEN) {
            let reg = pool.alloc();
            self.push(Self::load_instr(reg, out + v * VECTOR_LEN));
            let scaled = pool.alloc();
            self.push(Instruction::VSMulMod {
                vd: scaled,
                vs: reg,
                rt: NINV,
                rm: MOD,
            });
            self.push(Self::store_instr(scaled, out + v * VECTOR_LEN));
            pool.release(reg);
            pool.release(scaled);
        }
    }
}

/// Loaded operands of one forward butterfly block.
#[derive(Debug)]
struct FwdBlock {
    a: VReg,
    b: VReg,
    tw: VReg,
    pooled: bool,
    blk: usize,
}

/// Loaded operands of one inverse butterfly block.
#[derive(Debug)]
struct InvBlock {
    y1: VReg,
    y2: VReg,
    tw: VReg,
    pooled: bool,
    blk: usize,
}

impl core::fmt::Display for Direction {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Direction::Forward => write!(f, "fwd"),
            Direction::Inverse => write!(f, "inv"),
        }
    }
}

impl core::fmt::Display for CodegenStyle {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CodegenStyle::Optimized => write!(f, "opt"),
            CodegenStyle::Unoptimized => write!(f, "unopt"),
            CodegenStyle::StridedMemory => write!(f, "strided"),
        }
    }
}
