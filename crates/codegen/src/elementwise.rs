//! Elementwise kernels: lane-wise modular arithmetic over VDM vectors.
//!
//! RLWE traffic is not only NTTs — ciphertext addition, plaintext
//! multiplication, and the pointwise stage of every polynomial product
//! are streams of `vaddmod`/`vmulmod` over full rings (Fig. 1). These
//! kernels are memory-bound (one compute instruction per three VDM
//! transfers), the opposite corner of the design space from the
//! compute-dense NTT, which makes them a useful second calibration
//! point for the cycle model.
//!
//! Layout: operand A at element 0, operand B at `n`, output at `2n`.

use crate::gen::RegPool;
use crate::kernel::{GoldenFn, Kernel, KernelKey, KernelOp, KernelSpec};
use crate::sched::list_schedule;
use crate::{CodegenError, CodegenStyle, Direction};
use rpu_arith::Modulus128;
use rpu_isa::consts::{VDM_MAX_BYTES, VECTOR_LEN};
use rpu_isa::{AReg, AddrMode, Instruction, MReg, Program};

/// Software-pipeline group size (vectors in flight per "rectangle"),
/// mirroring the NTT generator's rectangles decomposition.
const GROUP: usize = 4;

/// The lane-wise operation of an [`ElementwiseSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ElementwiseOp {
    /// `out[i] = a[i] * b[i] mod q` — the pointwise stage of a
    /// negacyclic product, or an NTT-domain ciphertext multiply.
    MulMod,
    /// `out[i] = a[i] + b[i] mod q` — ciphertext addition.
    AddMod,
    /// `out[i] = a[i] - b[i] mod q` — ciphertext subtraction (and the
    /// `b - a·s` step of decryption).
    SubMod,
}

impl ElementwiseOp {
    fn kernel_op(self) -> KernelOp {
        match self {
            ElementwiseOp::MulMod => KernelOp::PointwiseMul,
            ElementwiseOp::AddMod => KernelOp::PointwiseAdd,
            ElementwiseOp::SubMod => KernelOp::PointwiseSub,
        }
    }
}

/// Specification of an elementwise kernel over two `n`-element vectors.
///
/// # Examples
///
/// ```
/// use rpu_codegen::{CodegenStyle, ElementwiseOp, ElementwiseSpec, KernelSpec};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let q = rpu_arith::find_ntt_prime_u128(126, 2048).expect("prime exists");
/// let spec = ElementwiseSpec::new(ElementwiseOp::MulMod, 1024, q, CodegenStyle::Optimized);
/// assert!(spec.generate()?.verify()?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ElementwiseSpec {
    /// The lane-wise operation.
    pub op: ElementwiseOp,
    /// Vector length in elements (multiple of 512).
    pub n: usize,
    /// The modulus (any valid 127-bit-or-less modulus > 1).
    pub q: u128,
    /// Code-generation style ([`CodegenStyle::Unoptimized`] emits each
    /// load–compute–store chain in plain dependency order; anything else
    /// software-pipelines and list-schedules).
    pub style: CodegenStyle,
}

impl ElementwiseSpec {
    /// Creates an elementwise spec.
    pub fn new(op: ElementwiseOp, n: usize, q: u128, style: CodegenStyle) -> Self {
        ElementwiseSpec { op, n, q, style }
    }
}

impl KernelSpec for ElementwiseSpec {
    fn key(&self) -> KernelKey {
        KernelKey {
            op: self.op.kernel_op(),
            n: self.n,
            q: self.q,
            direction: Direction::Forward,
            style: self.style,
            param: 0,
        }
    }

    fn generate(&self) -> Result<Kernel, CodegenError> {
        let ElementwiseSpec { op, n, q, style } = *self;
        if n == 0 || !n.is_multiple_of(VECTOR_LEN) {
            return Err(CodegenError::UnsupportedDegree(n));
        }
        let modulus =
            Modulus128::new(q).ok_or(CodegenError::Schedule(rpu_ntt::NttError::InvalidModulus))?;
        let total = 3 * n;
        if total * rpu_isa::consts::ELEM_BYTES > VDM_MAX_BYTES {
            return Err(CodegenError::WorkingSetTooLarge {
                bytes: total * rpu_isa::consts::ELEM_BYTES,
            });
        }

        let mut program = Program::new(format!("{}{}_{}", self.key().op, n, style));
        // SDM image is [0, q]: same slot convention as the NTT kernels.
        // No baked scalar multiplicands, so no engine companions to
        // append (see `crate::kernel::scalar_companion`).
        program.push(Instruction::MLoad {
            rt: MReg::at(0),
            base: AReg::at(0),
            offset: 1,
        });
        emit_pointwise(&mut program, op, n, style, 0, n, 2 * n);
        if style != CodegenStyle::Unoptimized {
            program = list_schedule(&program);
        }

        let golden: GoldenFn = Box::new(move |ops: &[&[u128]]| {
            ops[0]
                .iter()
                .zip(ops[1])
                .map(|(&a, &b)| match op {
                    ElementwiseOp::MulMod => modulus.mul(a % q, b % q),
                    ElementwiseOp::AddMod => modulus.add(a % q, b % q),
                    ElementwiseOp::SubMod => modulus.sub(a % q, b % q),
                })
                .collect()
        });
        Ok(Kernel::new(
            self.key(),
            program,
            vec![0u128; total],
            vec![0, q],
            vec![(0, n), (n, n)],
            (2 * n, n),
            golden,
        ))
    }
}

/// Emits the shared pipelined load–compute–store stream:
/// `dst[i] = op(a_src[i], b_src[i])` over `n / 512` vectors, addressed
/// as static element offsets off `a0`. With a non-unoptimized `style`,
/// loads of group `g+1` are issued before the compute/store phase of
/// group `g` (the NTT generator's "rectangles" pipelining); callers run
/// [`list_schedule`] afterwards. `m0` must already hold the modulus.
///
/// Used by [`ElementwiseSpec`] (offsets `0, n, 2n`) and by the fused
/// convolution pipeline's pointwise bridge.
pub(crate) fn emit_pointwise(
    program: &mut Program,
    op: ElementwiseOp,
    n: usize,
    style: CodegenStyle,
    a_src: usize,
    b_src: usize,
    dst: usize,
) {
    let base = AReg::at(0);
    let m0 = MReg::at(0);
    let compute = |vd, vs, vt| match op {
        ElementwiseOp::MulMod => Instruction::VMulMod { vd, vs, vt, rm: m0 },
        ElementwiseOp::AddMod => Instruction::VAddMod { vd, vs, vt, rm: m0 },
        ElementwiseOp::SubMod => Instruction::VSubMod { vd, vs, vt, rm: m0 },
    };
    let vload = |vd, off: usize| Instruction::VLoad {
        vd,
        base,
        offset: off as u32,
        mode: AddrMode::Unit,
    };
    let pipelined = style != CodegenStyle::Unoptimized;
    let vectors = n / VECTOR_LEN;
    let mut pool = RegPool::new(1, 48);
    let drain = |program: &mut Program, group: Vec<(_, _, usize)>, pool: &mut RegPool| {
        for (a, b, v) in group {
            let c = pool.alloc();
            program.push(compute(c, a, b));
            pool.release(a);
            pool.release(b);
            program.push(Instruction::VStore {
                vs: c,
                base,
                offset: (dst + v * VECTOR_LEN) as u32,
                mode: AddrMode::Unit,
            });
            pool.release(c);
        }
    };
    let mut prev: Option<Vec<_>> = None;
    let mut v = 0;
    while v < vectors {
        let g = GROUP.min(vectors - v);
        let mut cur = Vec::with_capacity(g);
        for i in 0..g {
            let a = pool.alloc();
            let b = pool.alloc();
            program.push(vload(a, a_src + (v + i) * VECTOR_LEN));
            program.push(vload(b, b_src + (v + i) * VECTOR_LEN));
            cur.push((a, b, v + i));
        }
        if pipelined {
            if let Some(group) = prev.take() {
                drain(program, group, &mut pool);
            }
            prev = Some(cur);
        } else {
            drain(program, cur, &mut pool);
        }
        v += g;
    }
    if let Some(group) = prev.take() {
        drain(program, group, &mut pool);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prime() -> u128 {
        rpu_arith::find_ntt_prime_u128(126, 2048).expect("prime exists")
    }

    #[test]
    fn rejects_non_vector_multiple() {
        let spec =
            ElementwiseSpec::new(ElementwiseOp::MulMod, 100, prime(), CodegenStyle::Optimized);
        assert!(matches!(
            spec.generate(),
            Err(CodegenError::UnsupportedDegree(100))
        ));
    }

    #[test]
    fn all_ops_verify_both_styles() {
        for op in [
            ElementwiseOp::MulMod,
            ElementwiseOp::AddMod,
            ElementwiseOp::SubMod,
        ] {
            for style in [CodegenStyle::Optimized, CodegenStyle::Unoptimized] {
                let spec = ElementwiseSpec::new(op, 2048, prime(), style);
                let kernel = spec.generate().unwrap();
                assert!(kernel.verify().unwrap(), "{op:?} {style:?}");
                assert_eq!(kernel.arity(), 2);
            }
        }
    }

    #[test]
    fn computes_the_documented_function() {
        let q = prime();
        let m = Modulus128::new(q).unwrap();
        let n = 1024usize;
        let a: Vec<u128> = (0..n as u128).map(|i| (i * 7 + 1) % q).collect();
        let b: Vec<u128> = (0..n as u128).map(|i| (i * 13 + 2) % q).collect();
        let spec = ElementwiseSpec::new(ElementwiseOp::MulMod, n, q, CodegenStyle::Optimized);
        let out = spec.generate().unwrap().execute(&[&a, &b]).unwrap();
        for i in (0..n).step_by(111) {
            assert_eq!(out[i], m.mul(a[i], b[i]), "lane {i}");
        }
    }

    #[test]
    fn optimized_not_slower_than_unoptimized() {
        use rpu_sim::{CycleSim, RpuConfig};
        let q = prime();
        let sim = CycleSim::new(RpuConfig::pareto_128x128()).unwrap();
        let cycles = |style| {
            let spec = ElementwiseSpec::new(ElementwiseOp::MulMod, 8192, q, style);
            sim.simulate(spec.generate().unwrap().program()).cycles
        };
        assert!(cycles(CodegenStyle::Optimized) <= cycles(CodegenStyle::Unoptimized));
    }
}
