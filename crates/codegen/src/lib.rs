//! # rpu-codegen — SPIRAL-style B512 program generation for the NTT
//!
//! The paper programs the RPU through a new SPIRAL backend (Section V):
//! the Pease/Korn–Lambiotte constant-geometry NTT breakdown, register
//! allocation, store-to-load-aware emission, and a greedy instruction
//! scheduler. This crate reproduces that flow in Rust:
//!
//! * [`NttKernel::generate`] emits forward/inverse negacyclic NTT kernels
//!   for ring degrees 1K–64K (and beyond, VDM permitting) directly from
//!   the shared [`rpu_ntt::PeaseSchedule`], in two styles:
//!   hardware-aware **optimized** (register renaming, twiddle caching,
//!   software-pipelined "rectangles", list scheduling) and naive
//!   **unoptimized** (the Fig. 6 baseline).
//! * [`list_schedule`] is the standalone scheduling pass.
//!
//! Beyond the raw NTT, the crate exposes the uniform [`KernelSpec`] →
//! [`Kernel`] contract of the session API: every workload generator
//! produces a [`Kernel`] carrying its program, VDM/SDM memory images,
//! operand map, and scalar golden model, identified by a [`KernelKey`]
//! for caching. Three generators are built in:
//!
//! * [`NttSpec`] — one forward or inverse NTT (wraps [`NttKernel`]);
//! * [`ElementwiseSpec`] — lane-wise `vmulmod`/`vaddmod` streams
//!   (ciphertext add, NTT-domain multiply);
//! * [`ConvolutionSpec`] — the fused negacyclic polynomial product
//!   (forward NTT ×2 → pointwise multiply → inverse NTT) of Fig. 1,
//!   as a single B512 program;
//! * [`AutomorphismSpec`] — the coefficient permutation of a Galois
//!   automorphism `x → x^g` (HE rotation), realized with the `vgather`
//!   indexed load and a baked-in index/sign table;
//! * [`KeySwitchSpec`] — one gadget digit of a key switch (forward NTT →
//!   multiply by a resident key component → accumulate), the inner loop
//!   of relinearization and rotation;
//! * [`RescaleSpec`] — one surviving tower's leveled rescale (forward
//!   NTT of the rounding correction → subtract → scale by the dropped
//!   prime's inverse), the device half of modulus switching.
//!
//! Generated kernels carry their VDM/SDM memory images and golden
//! outputs, so the functional simulator can verify them end to end.
//!
//! # Examples
//!
//! ```
//! use rpu_codegen::{CodegenStyle, Direction, NttKernel};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let q = rpu_arith::find_ntt_prime_u128(126, 2048).expect("prime exists");
//! let k = NttKernel::generate(1024, q, Direction::Forward, CodegenStyle::Optimized)?;
//! assert!(k.program().len() > 0);
//! println!("{}", k.program().to_asm());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod automorphism;
mod elementwise;
mod gen;
mod kernel;
mod keyswitch;
mod layout;
mod pipeline;
mod rescale;
mod sched;

pub use automorphism::AutomorphismSpec;
pub use elementwise::{ElementwiseOp, ElementwiseSpec};
pub use gen::NttKernel;
pub use kernel::{Kernel, KernelKey, KernelOp, KernelSpec, NttSpec};
pub use keyswitch::KeySwitchSpec;
pub use layout::KernelLayout;
pub use pipeline::ConvolutionSpec;
pub use rescale::RescaleSpec;
pub use sched::list_schedule;

// The engine taxonomy kernels select from (by modulus width); re-exported
// so session-layer callers can match on `Kernel::engine()` without a
// direct `rpu-arith` dependency.
pub use rpu_arith::EngineKind;

/// Transform direction of a generated kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Natural-order coefficients → Pease-ordered evaluations.
    Forward,
    /// Pease-ordered evaluations → natural-order coefficients.
    Inverse,
}

/// Code-generation style (the two programs of Fig. 6, plus an ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CodegenStyle {
    /// Hardware-aware: renaming, twiddle caching, software pipelining,
    /// list scheduling.
    Optimized,
    /// No knowledge of the microarchitecture: same computation, emitted
    /// in plain dependency order with no pipelining or scheduling.
    Unoptimized,
    /// Ablation: like `Optimized` but *shuffle-free* — butterfly halves
    /// are written with stride-2 VDM stores (and the inverse reads with
    /// stride-2 loads) instead of SBAR pack/unpack shuffles. This sends
    /// the interleaving through the VDM, doubling bank pressure —
    /// quantifying why B512 has shuffle instructions at all
    /// (Section III: shuffles "take pressure off the VDM").
    StridedMemory,
}

/// Error generating a kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodegenError {
    /// Ring degree not a power of two, or smaller than `2 * VLEN = 1024`
    /// (one butterfly block must fill a vector).
    UnsupportedDegree(usize),
    /// The modulus does not admit the transform.
    Schedule(rpu_ntt::NttError),
    /// The kernel working set exceeds the 32 MiB architectural VDM.
    WorkingSetTooLarge {
        /// Required bytes.
        bytes: usize,
    },
}

impl core::fmt::Display for CodegenError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CodegenError::UnsupportedDegree(n) => {
                write!(
                    f,
                    "ring degree {n} unsupported (need a power of two >= 1024)"
                )
            }
            CodegenError::Schedule(e) => write!(f, "schedule construction failed: {e}"),
            CodegenError::WorkingSetTooLarge { bytes } => {
                write!(
                    f,
                    "kernel working set of {bytes} bytes exceeds the 32 MiB VDM"
                )
            }
        }
    }
}

impl std::error::Error for CodegenError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CodegenError::Schedule(e) => Some(e),
            _ => None,
        }
    }
}

impl From<rpu_ntt::NttError> for CodegenError {
    fn from(e: rpu_ntt::NttError) -> Self {
        CodegenError::Schedule(e)
    }
}

/// Rebuilds the [`KernelSpec`] a [`KernelKey`] came from, so a restored
/// session can regenerate (re-pin) every kernel its cache held when the
/// snapshot was taken.
///
/// Returns `None` when the key does not correspond to any spec this
/// crate can produce — an op parameter out of range (e.g. an
/// automorphism generator that does not round-trip) or a direction that
/// the op ignores but the key records differently than the canonical
/// spec would. Callers treat `None` as a corrupt snapshot record.
pub fn spec_for_key(key: &KernelKey) -> Option<Box<dyn KernelSpec>> {
    let spec: Box<dyn KernelSpec> = match key.op {
        KernelOp::Ntt => Box::new(NttSpec::new(key.n, key.q, key.direction, key.style)),
        KernelOp::PointwiseMul => Box::new(ElementwiseSpec::new(
            ElementwiseOp::MulMod,
            key.n,
            key.q,
            key.style,
        )),
        KernelOp::PointwiseAdd => Box::new(ElementwiseSpec::new(
            ElementwiseOp::AddMod,
            key.n,
            key.q,
            key.style,
        )),
        KernelOp::PointwiseSub => Box::new(ElementwiseSpec::new(
            ElementwiseOp::SubMod,
            key.n,
            key.q,
            key.style,
        )),
        KernelOp::NegacyclicMul => Box::new(ConvolutionSpec::new(key.n, key.q, key.style)),
        KernelOp::Automorphism => {
            let g: usize = key.param.try_into().ok()?;
            Box::new(AutomorphismSpec::new(key.n, key.q, g, key.style))
        }
        KernelOp::KeySwitch => Box::new(KeySwitchSpec::new(key.n, key.q, key.style)),
        KernelOp::Rescale => Box::new(RescaleSpec::new(key.n, key.q, key.param, key.style)),
    };
    // A canonical spec must reproduce the key exactly; anything else
    // (normalized parameters, ignored fields set oddly) means the key
    // did not come from this spec and cannot be trusted for re-pinning.
    if spec.key() == *key {
        Some(spec)
    } else {
        None
    }
}
