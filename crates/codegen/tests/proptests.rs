//! Property tests for the code generator and scheduler.
//!
//! The key invariant: the list scheduler may reorder *any* valid B512
//! program, but functional execution must be bit-identical before and
//! after — for arbitrary random programs, not just NTT kernels.

use proptest::prelude::*;
use rpu_codegen::list_schedule;
use rpu_isa::{AReg, AddrMode, Instruction, MReg, Program, SReg, VReg};
use rpu_sim::FunctionalSim;

const MEM_ELEMS: usize = 8192; // VDM elements available to random programs

fn arb_vreg() -> impl Strategy<Value = VReg> {
    (0u8..64).prop_map(VReg::at)
}

/// Offsets that keep every addressing mode in bounds for MEM_ELEMS.
fn arb_offset() -> impl Strategy<Value = u32> {
    0u32..((MEM_ELEMS - 4096) as u32)
}

fn arb_mode() -> impl Strategy<Value = AddrMode> {
    prop_oneof![
        Just(AddrMode::Unit),
        (1u8..3).prop_map(|l| AddrMode::Strided { log2_stride: l }),
        (3u8..9).prop_map(|l| AddrMode::StridedSkip { log2_block: l }),
        (0u8..9).prop_map(|l| AddrMode::Repeated { log2_block: l }),
    ]
}

/// Random but *valid* instructions: memory accesses stay in bounds and
/// the modulus register is always m0 (set to a prime by the harness).
fn arb_instruction() -> impl Strategy<Value = Instruction> {
    let m = MReg::at(0);
    let a = AReg::at(0);
    prop_oneof![
        (arb_vreg(), arb_offset(), arb_mode()).prop_map(move |(vd, offset, mode)| {
            Instruction::VLoad {
                vd,
                base: a,
                offset,
                mode,
            }
        }),
        (arb_vreg(), arb_offset(), arb_mode()).prop_map(move |(vs, offset, mode)| {
            Instruction::VStore {
                vs,
                base: a,
                offset,
                mode,
            }
        }),
        (arb_vreg(), arb_offset()).prop_map(move |(vd, offset)| Instruction::VBroadcast {
            vd,
            base: a,
            offset
        }),
        (arb_vreg(), arb_vreg(), arb_vreg()).prop_map(move |(vd, vs, vt)| Instruction::VAddMod {
            vd,
            vs,
            vt,
            rm: m
        }),
        (arb_vreg(), arb_vreg(), arb_vreg()).prop_map(move |(vd, vs, vt)| Instruction::VSubMod {
            vd,
            vs,
            vt,
            rm: m
        }),
        (arb_vreg(), arb_vreg(), arb_vreg()).prop_map(move |(vd, vs, vt)| Instruction::VMulMod {
            vd,
            vs,
            vt,
            rm: m
        }),
        (arb_vreg(), arb_vreg(), (0u8..4).prop_map(SReg::at))
            .prop_map(move |(vd, vs, rt)| Instruction::VSAddMod { vd, vs, rt, rm: m }),
        (arb_vreg(), arb_vreg(), arb_vreg(), arb_vreg(), arb_vreg()).prop_map(
            move |(vd, vd1, vs, vt, vt1)| Instruction::Bfly {
                vd,
                vd1,
                vs,
                vt,
                vt1,
                rm: m
            }
        ),
        (arb_vreg(), arb_vreg(), arb_vreg()).prop_map(|(vd, vs, vt)| Instruction::UnpkLo {
            vd,
            vs,
            vt
        }),
        (arb_vreg(), arb_vreg(), arb_vreg()).prop_map(|(vd, vs, vt)| Instruction::UnpkHi {
            vd,
            vs,
            vt
        }),
        (arb_vreg(), arb_vreg(), arb_vreg()).prop_map(|(vd, vs, vt)| Instruction::PkLo {
            vd,
            vs,
            vt
        }),
        (arb_vreg(), arb_vreg(), arb_vreg()).prop_map(|(vd, vs, vt)| Instruction::PkHi {
            vd,
            vs,
            vt
        }),
    ]
}

const Q: u128 = (1u128 << 61) - 1; // Mersenne prime modulus for harness state

fn fresh_sim() -> FunctionalSim {
    let mut sim = FunctionalSim::new(MEM_ELEMS, 16);
    sim.set_mrf(MReg::at(0), Q);
    for i in 0..4 {
        sim.set_srf(SReg::at(i), (i as u128 * 7919 + 3) % Q);
    }
    // deterministic non-trivial memory image
    let image: Vec<u128> = (0..MEM_ELEMS as u128)
        .map(|i| (i * 2654435761) % Q)
        .collect();
    sim.write_vdm(0, &image).unwrap();
    sim
}

fn run(program: &Program) -> (Vec<u128>, Vec<Vec<u128>>) {
    let mut sim = fresh_sim();
    sim.run(program).expect("in-bounds program executes");
    let mem = sim.read_vdm(0, MEM_ELEMS).unwrap();
    let regs: Vec<Vec<u128>> = (0..64).map(|r| sim.vreg(VReg::at(r)).to_vec()).collect();
    (mem, regs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn scheduler_preserves_semantics(instrs in prop::collection::vec(arb_instruction(), 1..60)) {
        let program: Program = instrs.into_iter().collect();
        let scheduled = list_schedule(&program);
        prop_assert_eq!(scheduled.len(), program.len());
        let (mem_a, regs_a) = run(&program);
        let (mem_b, regs_b) = run(&scheduled);
        prop_assert_eq!(mem_a, mem_b, "memory state must match");
        prop_assert_eq!(regs_a, regs_b, "register state must match");
    }

    #[test]
    fn scheduler_is_idempotent_on_length(instrs in prop::collection::vec(arb_instruction(), 1..40)) {
        let program: Program = instrs.into_iter().collect();
        let once = list_schedule(&program);
        let twice = list_schedule(&once);
        prop_assert_eq!(once.len(), twice.len());
        // and the double-scheduled program still computes the same thing
        let (mem_a, _) = run(&once);
        let (mem_b, _) = run(&twice);
        prop_assert_eq!(mem_a, mem_b);
    }

    #[test]
    fn scheduled_program_never_slower(instrs in prop::collection::vec(arb_instruction(), 1..50)) {
        use rpu_sim::{CycleSim, RpuConfig};
        let program: Program = instrs.into_iter().collect();
        let scheduled = list_schedule(&program);
        let sim = CycleSim::new(RpuConfig::pareto_128x128()).expect("valid");
        let before = sim.simulate(&program).cycles;
        let after = sim.simulate(&scheduled).cycles;
        // the time-aware scheduler targets exactly this configuration, so
        // it must not regress by more than a small slack (greedy choices
        // are not globally optimal)
        prop_assert!(
            after as f64 <= before as f64 * 1.10 + 16.0,
            "scheduling regressed {before} -> {after} cycles"
        );
    }
}
