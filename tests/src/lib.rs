//! Cross-crate integration tests for the RPU workspace live in `tests/`.
