//! Slimmed-down versions of the figure experiments as regression tests:
//! each asserts the qualitative *shape* the paper reports, so a change
//! that silently breaks a reproduced trend fails CI rather than only
//! showing up in EXPERIMENTS.md.

use rpu::model::{best_perf_per_area, pareto_frontier, AreaModel, EnergyModel};
use rpu::{
    explore_design_space, CodegenStyle, CycleSim, Direction, HbmModel, NttKernel, RpuConfig,
};

fn kernel(n: usize, style: CodegenStyle) -> NttKernel {
    let q = rpu::arith::find_ntt_prime_u128(126, 2 * n as u128).expect("prime exists");
    NttKernel::generate(n, q, Direction::Forward, style).expect("generates")
}

fn cycles(k: &NttKernel, h: usize, b: usize) -> u64 {
    CycleSim::new(RpuConfig::with_geometry(h, b))
        .expect("valid")
        .simulate(k.program())
        .cycles
}

#[test]
fn fig3_shape_pareto_cluster() {
    // Pareto points cluster where HPLEs = banks or 2x banks (paper VI-B).
    let pts = explore_design_space(8192, &[16, 32, 64, 128], &[32, 64, 128]).unwrap();
    let frontier = pareto_frontier(&pts);
    assert!(!frontier.is_empty());
    // the balanced diagonal must survive on the frontier (the paper's
    // observation; our cheaper-bank area model admits extra points too)
    for (h, b) in [(32usize, 32usize), (64, 64), (128, 128)] {
        assert!(
            frontier.iter().any(|p| p.hples == h && p.banks == b),
            "({h},{b}) should be Pareto-optimal; frontier: {frontier:?}"
        );
    }
}

#[test]
fn fig4_shape_balanced_best() {
    let pts = explore_design_space(16384, &[32, 64, 128, 256], &[32, 64, 128, 256]).unwrap();
    let best = best_perf_per_area(&pts).unwrap();
    assert_eq!((best.hples, best.banks), (128, 128), "paper's best point");
}

#[test]
fn fig5_shape_area_trends() {
    let m = AreaModel::default();
    // VBAR doubles per bank doubling beyond 64 banks at 128 HPLEs
    assert!(m.vbar_mm2(128, 256) / m.vbar_mm2(128, 128) > 1.8);
    // LAW engine dominates the energy budget at the headline point
    let k = kernel(4096, CodegenStyle::Optimized);
    let stats = CycleSim::new(RpuConfig::pareto_128x128())
        .unwrap()
        .simulate(k.program());
    let e = EnergyModel::default().breakdown(&stats);
    assert!(e.law > e.vrf && e.vrf > e.vdm, "LAW > VRF > VDM ordering");
}

#[test]
fn fig6_shape_optimized_wins() {
    let opt = kernel(8192, CodegenStyle::Optimized);
    let unopt = kernel(8192, CodegenStyle::Unoptimized);
    for h in [32usize, 128] {
        let ratio = cycles(&unopt, h, 128) as f64 / cycles(&opt, h, 128) as f64;
        assert!(
            (1.3..4.0).contains(&ratio),
            "H={h}: unopt/opt ratio {ratio:.2} out of the published ballpark"
        );
    }
}

#[test]
fn fig7_shape_ii_hurts_latency_does_not() {
    let k = kernel(8192, CodegenStyle::Optimized);
    let base = RpuConfig::pareto_128x128();
    let run = |f: fn(&mut RpuConfig)| {
        let mut c = base;
        f(&mut c);
        CycleSim::new(c).unwrap().simulate(k.program()).cycles
    };
    let baseline = run(|_| {});
    let deep_mult = run(|c| c.mult_latency = 8);
    let slow_ii = run(|c| c.mult_ii = 6);
    assert!(
        deep_mult as f64 <= baseline as f64 * 1.25,
        "latency must be cheap: {baseline} -> {deep_mult}"
    );
    assert!(
        slow_ii as f64 >= baseline as f64 * 1.5,
        "II must be expensive: {baseline} -> {slow_ii}"
    );
}

#[test]
fn fig8_shape_latency_tolerant() {
    let k = kernel(8192, CodegenStyle::Optimized);
    let base = RpuConfig::pareto_128x128();
    let mut worst = base;
    worst.ls_latency = 10;
    worst.shuffle_latency = 10;
    let b = CycleSim::new(base).unwrap().simulate(k.program()).cycles;
    let w = CycleSim::new(worst).unwrap().simulate(k.program()).cycles;
    assert!(
        (w as f64) < b as f64 * 1.25,
        "crossbar latency must stay cheap: {b} -> {w}"
    );
}

#[test]
fn fig9_shape_efficiency_grows_with_n() {
    let cfg = RpuConfig::pareto_128x128();
    let sim = CycleSim::new(cfg).unwrap();
    let ratio = |n: usize| {
        let k = kernel(n, CodegenStyle::Optimized);
        let us = cfg.cycles_to_us(sim.simulate(k.program()).cycles);
        let theo =
            (n as f64 * (n as f64).log2()) / (cfg.num_hples as f64 * cfg.frequency_ghz() * 1000.0);
        us / theo
    };
    let small = ratio(1024);
    let large = ratio(16384);
    assert!(
        small > 1.5 * large,
        "1K must be far less efficient than 16K: {small:.2} vs {large:.2}"
    );
    // HBM keeps up with the large kernel
    let k = kernel(16384, CodegenStyle::Optimized);
    let us = cfg.cycles_to_us(sim.simulate(k.program()).cycles);
    assert!(HbmModel::default().load_hidden_by(16384, us));
}

#[test]
fn ablation_shape_shuffles_relieve_vdm() {
    let shuffled = kernel(8192, CodegenStyle::Optimized);
    let strided = kernel(8192, CodegenStyle::StridedMemory);
    let penalty = cycles(&strided, 128, 128) as f64 / cycles(&shuffled, 128, 128) as f64;
    assert!(
        penalty > 1.3,
        "removing shuffles must cost VDM bandwidth, got {penalty:.2}x"
    );
}
