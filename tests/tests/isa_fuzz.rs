//! Random-program differential fuzzing over the whole ISA — the seed of
//! the ROADMAP's "ISA fuzz" item.
//!
//! A deterministic generator builds random *legal* B512 programs (every
//! register index valid, every instruction encodable; execution may
//! still fault, and fault parity is part of the contract). Each program
//! is run three ways:
//!
//! 1. the reference interpreter ([`FunctionalSim::run`]) — the oracle;
//! 2. the pre-decoded fast path ([`FunctionalSim::run_predecoded`]);
//! 3. the interpreter again, on the program after an encode → decode
//!    round trip through its binary form.
//!
//! All three must agree on the outcome (`Ok` or the exact `ExecError`)
//! and on every piece of publicly observable architectural state.
//!
//! Programs are drawn from **weighted shape profiles** rather than a
//! uniform instruction mix: memory-heavy, compute-heavy,
//! butterfly/pack, and gather-heavy programs stress different simulator
//! paths (address generation, the modular ALUs, the permute network,
//! and indexed access respectively) far harder than uniform draws do.
//! Two additional **fault-injection shapes** deliberately steer
//! programs into typed runtime faults — gathers fed out-of-range
//! indices from a poisoned VDM region, and scalar/modulus/address
//! loads aimed past the end of the SDM — so error parity between the
//! interpreter and the fast path is exercised as hard as success
//! parity.
//!
//! Programs are also drawn across two **modulus-width classes**, since
//! the fast path services them with different arithmetic engines: the
//! *small* class seeds the MRF/SDM with ≤63-bit primes (tiny towers
//! plus a 60-bit NTT prime, dispatched to native u64 lanes) and the
//! *wide* class with 120/126-bit primes (dispatched to 128-bit
//! Montgomery with register-domain residency, so Montgomery
//! conversion points sit directly in the fuzzed path). `RPU_FUZZ_WIDTH`
//! (`small` | `wide` | `both`, default `both`) pins the classes a run
//! samples — CI's small-prime leg sets `small`.
//!
//! The case count defaults to 256 and is tunable with `RPU_FUZZ_CASES`
//! (a long soak sets thousands); the generic `PROPTEST_CASES` variable
//! still wins over both when set, since the proptest runner reads it
//! last.
//!
//! On divergence the harness does not hand proptest the raw
//! several-dozen-instruction program: a **greedy shrinker** first cuts
//! the program down (suffix truncation, then single-instruction
//! deletion) while the divergence still reproduces, and the failure
//! message carries the minimal reproducer as an assembly listing.

use std::sync::OnceLock;

use proptest::prelude::*;
use rpu::isa::{AReg, AddrMode, Instruction, MReg, PredecodedProgram, Program, SReg, VReg};
use rpu::FunctionalSim;

const VDM_ELEMS: usize = 1 << 14;
const SDM_ELEMS: usize = 64;

/// Top-of-VDM region seeded with out-of-range values: a `vload` from
/// here followed by a `vgather` through the loaded register faults on
/// the per-lane index bounds check. Two vectors wide so a Unit-mode
/// load anywhere in the first half stays in bounds itself.
const POISON_LEN: usize = 1024;
const POISON_BASE: usize = VDM_ELEMS - POISON_LEN;

/// ≤63-bit moduli pre-seeded into `m0..m3` and cycled through the SDM
/// in the **small** width class (so `mload`/`aload` pick up values that
/// keep programs mostly alive while still exercising invalid-modulus
/// and OOB faults). The last entry is a 60-bit NTT prime
/// (2⁶⁰ − 2¹⁴ + 1), so the class reaches the fast path's native-u64
/// engine with a full-width operand, not just toy towers.
const SMALL_PRIMES: [u128; 4] = [97, 193, 3329, 1_152_921_504_606_830_593];

/// The two modulus-width classes programs are fuzzed under. They differ
/// only in which primes seed the MRF/SRF/SDM — the VDM image stays
/// below 3329 in both, so gather-index safety is identical and the
/// fault-injection shapes keep their teeth.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum WidthClass {
    /// ≤63-bit primes: the fast path uses native u64 lanes.
    Small,
    /// 120/126-bit primes: the fast path uses 128-bit Montgomery with
    /// register-domain residency.
    Wide,
}

impl WidthClass {
    /// Primes seeded into `m0..m3` and cycled through the SDM.
    fn primes(self) -> &'static [u128; 4] {
        match self {
            WidthClass::Small => &SMALL_PRIMES,
            WidthClass::Wide => {
                static WIDE: OnceLock<[u128; 4]> = OnceLock::new();
                WIDE.get_or_init(|| {
                    let p120 = rpu::arith::find_ntt_prime_chain(120, 2048, 2);
                    let p126 = rpu::arith::find_ntt_prime_chain(126, 2048, 2);
                    [p120[0], p120[1], p126[0], p126[1]]
                })
            }
        }
    }
}

/// Width classes this run samples: `RPU_FUZZ_WIDTH` set to `small` or
/// `wide` pins one class (CI's small-prime leg sets `small`); anything
/// else — including unset — enables both.
fn enabled_classes() -> &'static [WidthClass] {
    static CLASSES: OnceLock<Vec<WidthClass>> = OnceLock::new();
    CLASSES.get_or_init(|| match std::env::var("RPU_FUZZ_WIDTH").as_deref() {
        Ok("small") => vec![WidthClass::Small],
        Ok("wide") => vec![WidthClass::Wide],
        _ => vec![WidthClass::Small, WidthClass::Wide],
    })
}

/// Maps a proptest-drawn coin to a width class, respecting
/// [`enabled_classes`]: with one class pinned the coin is ignored, with
/// both enabled it picks between them.
fn class_for(wide: bool) -> WidthClass {
    let classes = enabled_classes();
    if classes.len() == 1 {
        classes[0]
    } else if wide {
        WidthClass::Wide
    } else {
        WidthClass::Small
    }
}

/// splitmix64 — deterministic, seedable, no external dependency.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn vreg(&mut self) -> VReg {
        VReg::at(self.below(64) as u8)
    }

    fn sreg(&mut self) -> SReg {
        SReg::at(self.below(64) as u8)
    }

    fn areg(&mut self) -> AReg {
        // Bias towards a0 (= 0) so most addresses stay in bounds, but
        // roam the whole ARF to exercise `aload`-indirected addressing.
        if self.below(4) == 0 {
            AReg::at(self.below(64) as u8)
        } else {
            AReg::at(0)
        }
    }

    fn mreg(&mut self) -> MReg {
        // Mostly the pre-seeded valid moduli; occasionally any MRF entry
        // (usually zero → InvalidModulus, checking fault parity).
        if self.below(8) == 0 {
            MReg::at(self.below(64) as u8)
        } else {
            MReg::at(self.below(4) as u8)
        }
    }

    fn offset(&mut self) -> u32 {
        // Mostly in-bounds for the 2^14-element VDM; occasionally up to
        // the 20-bit architectural field so span checks must fault.
        if self.below(6) == 0 {
            self.below(1 << 20) as u32
        } else {
            self.below(1 << 13) as u32
        }
    }

    fn sdm_offset(&mut self) -> u32 {
        if self.below(8) == 0 {
            self.below(1 << 10) as u32 // usually OOB for the 64-entry SDM
        } else {
            self.below(SDM_ELEMS as u64) as u32
        }
    }

    fn mode(&mut self) -> AddrMode {
        match self.below(4) {
            0 => AddrMode::Unit,
            1 => AddrMode::Strided {
                log2_stride: self.below(5) as u8,
            },
            2 => AddrMode::StridedSkip {
                log2_block: self.below(10) as u8,
            },
            _ => AddrMode::Repeated {
                log2_block: self.below(10) as u8,
            },
        }
    }
}

/// Fuzz case count: `RPU_FUZZ_CASES` overrides the default of 256
/// (raise it for soak runs; CI's scheduled fuzz job sets 512). The
/// proptest runner's own `PROPTEST_CASES` variable still takes
/// precedence over both.
fn fuzz_cases() -> u32 {
    std::env::var("RPU_FUZZ_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(256)
}

/// A program shape: relative weights over the 18 instruction kinds
/// (indexed as in the generator's match below). Skewed mixes reach
/// deeper into single subsystems than uniform draws — long load/store
/// runs hit address-generation corner cases, dense compute runs hit
/// ALU/fault parity, butterfly/pack runs hit the permute network, and
/// gather runs hit indexed addressing. The last two shapes are
/// **fault injectors**: they steer programs into typed runtime errors
/// (out-of-range gather indices, SDM accesses past the end) so both
/// execution paths must agree on the exact `ExecError`, not just on
/// successful results.
const SHAPES: [[u32; 18]; 6] = [
    // Memory-heavy: loads, stores, broadcasts, scalar/modulus/address
    // loads dominate.
    [8, 8, 2, 6, 5, 5, 5, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1],
    // Compute-heavy: the six modular-arithmetic kinds dominate.
    [2, 1, 1, 1, 1, 2, 1, 8, 8, 8, 6, 6, 6, 2, 1, 1, 1, 1],
    // Butterfly/pack: Bfly and the pack/unpack quartet dominate.
    [2, 1, 1, 1, 1, 2, 1, 1, 1, 2, 1, 1, 1, 10, 6, 6, 6, 6],
    // Gather-heavy: indexed access plus the loads that feed it.
    [6, 3, 12, 3, 2, 2, 4, 2, 1, 2, 1, 1, 1, 1, 1, 1, 1, 1],
    // Fault injector: loads from the poison region feed gathers with
    // out-of-range indices.
    [12, 2, 12, 2, 2, 2, 2, 2, 1, 2, 1, 1, 1, 1, 1, 1, 1, 1],
    // Fault injector: scalar/modulus/address loads roam past the end
    // of the SDM mid-program.
    [2, 1, 1, 1, 10, 10, 10, 3, 2, 3, 3, 2, 3, 1, 1, 1, 1, 1],
];

/// Index of the gather-fault shape in [`SHAPES`].
const GATHER_FAULT_SHAPE: usize = 4;
/// Index of the SDM-exhaustion shape in [`SHAPES`].
const SDM_FAULT_SHAPE: usize = 5;

/// SDM offset draw, specialized by shape: the exhaustion shape spreads
/// offsets over `[0, SDM_ELEMS * 3/2)` so roughly a third of its
/// scalar/modulus/address loads fault past the end of the SDM
/// mid-program; every other shape uses the default mostly-in-bounds
/// distribution.
fn sdm_shaped_offset(r: &mut Rng, shape_idx: usize) -> u32 {
    if shape_idx == SDM_FAULT_SHAPE {
        r.below(SDM_ELEMS as u64 * 3 / 2) as u32
    } else {
        r.sdm_offset()
    }
}

/// Draws an instruction-kind index from a weight table.
fn weighted_kind(r: &mut Rng, weights: &[u32; 18]) -> u64 {
    let total: u64 = weights.iter().map(|&w| u64::from(w)).sum();
    let mut draw = r.below(total);
    for (kind, &w) in weights.iter().enumerate() {
        let w = u64::from(w);
        if draw < w {
            return kind as u64;
        }
        draw -= w;
    }
    unreachable!("draw is below the weight total")
}

/// Generates a random well-formed program of `len` instructions, with
/// the instruction mix drawn from a seed-selected shape profile.
fn random_legal_program(seed: u64, len: usize) -> Program {
    let mut r = Rng(seed);
    let shape_idx = r.below(SHAPES.len() as u64) as usize;
    random_shaped_program(seed.wrapping_add(1), len, shape_idx)
}

/// Generates a random well-formed program from an explicit shape
/// profile — the entry point for the deterministic fault-injection
/// tests, which need to target one shape rather than sample them.
fn random_shaped_program(seed: u64, len: usize, shape_idx: usize) -> Program {
    let mut r = Rng(seed);
    let shape = &SHAPES[shape_idx];
    let mut p = Program::new(format!("fuzz_{seed:x}_s{shape_idx}"));
    for _ in 0..len {
        let instr = match weighted_kind(&mut r, shape) {
            0 => {
                // The gather-fault shape aims half its loads into the
                // poison region, so gather index registers pick up
                // out-of-range values.
                let (offset, mode) = if shape_idx == GATHER_FAULT_SHAPE && r.below(2) == 0 {
                    (
                        (POISON_BASE as u64 + r.below(POISON_LEN as u64 / 2)) as u32,
                        AddrMode::Unit,
                    )
                } else {
                    (r.offset(), r.mode())
                };
                Instruction::VLoad {
                    vd: r.vreg(),
                    base: r.areg(),
                    offset,
                    mode,
                }
            }
            1 => Instruction::VStore {
                vs: r.vreg(),
                base: r.areg(),
                offset: r.offset(),
                mode: r.mode(),
            },
            2 => Instruction::VGather {
                vd: r.vreg(),
                base: r.areg(),
                offset: r.offset(),
                vi: r.vreg(),
            },
            3 => Instruction::VBroadcast {
                vd: r.vreg(),
                base: r.areg(),
                offset: r.offset(),
            },
            4 => Instruction::SLoad {
                rt: r.sreg(),
                base: r.areg(),
                offset: sdm_shaped_offset(&mut r, shape_idx),
            },
            5 => Instruction::MLoad {
                rt: r.mreg(),
                base: r.areg(),
                offset: sdm_shaped_offset(&mut r, shape_idx),
            },
            6 => Instruction::ALoad {
                rt: r.areg(),
                base: r.areg(),
                offset: sdm_shaped_offset(&mut r, shape_idx),
            },
            7 => Instruction::VAddMod {
                vd: r.vreg(),
                vs: r.vreg(),
                vt: r.vreg(),
                rm: r.mreg(),
            },
            8 => Instruction::VSubMod {
                vd: r.vreg(),
                vs: r.vreg(),
                vt: r.vreg(),
                rm: r.mreg(),
            },
            9 => Instruction::VMulMod {
                vd: r.vreg(),
                vs: r.vreg(),
                vt: r.vreg(),
                rm: r.mreg(),
            },
            10 => Instruction::VSAddMod {
                vd: r.vreg(),
                vs: r.vreg(),
                rt: r.sreg(),
                rm: r.mreg(),
            },
            11 => Instruction::VSSubMod {
                vd: r.vreg(),
                vs: r.vreg(),
                rt: r.sreg(),
                rm: r.mreg(),
            },
            12 => Instruction::VSMulMod {
                vd: r.vreg(),
                vs: r.vreg(),
                rt: r.sreg(),
                rm: r.mreg(),
            },
            13 => Instruction::Bfly {
                vd: r.vreg(),
                vd1: r.vreg(),
                vs: r.vreg(),
                vt: r.vreg(),
                vt1: r.vreg(),
                rm: r.mreg(),
            },
            14 => Instruction::UnpkLo {
                vd: r.vreg(),
                vs: r.vreg(),
                vt: r.vreg(),
            },
            15 => Instruction::UnpkHi {
                vd: r.vreg(),
                vs: r.vreg(),
                vt: r.vreg(),
            },
            16 => Instruction::PkLo {
                vd: r.vreg(),
                vs: r.vreg(),
                vt: r.vreg(),
            },
            _ => Instruction::PkHi {
                vd: r.vreg(),
                vs: r.vreg(),
                vt: r.vreg(),
            },
        };
        p.push(instr);
    }
    p
}

/// A fully seeded simulator: non-trivial VDM image, SDM holding the
/// width class's valid primes, `m0..m3` and `s0..s3` preset. The top
/// [`POISON_LEN`] VDM elements hold out-of-range gather indices (just
/// past the VDM, and `u128::MAX`) for the fault-injection shape; the
/// rest of the image stays below 3329 in **both** width classes, so
/// ordinary gathers never fault on it — wide values reach vector state
/// only through the SDM (`sload`/`mload`) and the SRF.
fn fresh_sim(width: WidthClass) -> FunctionalSim {
    let primes = width.primes();
    let mut sim = FunctionalSim::new(VDM_ELEMS, SDM_ELEMS);
    let mut image: Vec<u128> = (0..VDM_ELEMS as u128)
        .map(|i| (i * 37 + 11) % 3329)
        .collect();
    for (i, slot) in image[POISON_BASE..].iter_mut().enumerate() {
        *slot = if i % 2 == 0 {
            (VDM_ELEMS + i) as u128
        } else {
            u128::MAX - i as u128
        };
    }
    sim.write_vdm(0, &image).unwrap();
    let sdm: Vec<u128> = (0..SDM_ELEMS).map(|i| primes[i % primes.len()]).collect();
    sim.write_sdm(0, &sdm).unwrap();
    for (i, &q) in primes.iter().enumerate() {
        sim.set_mrf(MReg::at(i as u8), q);
        sim.set_srf(SReg::at(i as u8), q / 3);
    }
    sim
}

/// Everything an integration test can observe of a simulator's state.
fn observable_state(sim: &FunctionalSim) -> (Vec<u128>, Vec<Vec<u128>>, Vec<u128>) {
    let vdm = sim.read_vdm(0, VDM_ELEMS).unwrap();
    let vregs: Vec<Vec<u128>> = (0..64).map(|v| sim.vreg(VReg::at(v)).to_vec()).collect();
    let sregs: Vec<u128> = (0..64).map(|s| sim.sreg(SReg::at(s))).collect();
    (vdm, vregs, sregs)
}

/// Runs a program through all three execution paths and returns a
/// description of the **first divergence** — interpreter vs fast path,
/// interpreter vs decode(encode(p)) replay, or a round-trip decode
/// mismatch — or `None` when all paths agree on the outcome and every
/// piece of observable state.
fn divergence(program: &Program, width: WidthClass) -> Option<String> {
    let mut interp = fresh_sim(width);
    let oracle = interp.run(program);

    let mut fast = fresh_sim(width);
    let fast_out = fast.run_predecoded(&PredecodedProgram::new(program.clone()));
    if oracle != fast_out {
        return Some(format!(
            "outcome mismatch, interpreter {oracle:?} vs fast path {fast_out:?}"
        ));
    }
    if observable_state(&interp) != observable_state(&fast) {
        return Some("state mismatch, interpreter vs fast path".into());
    }

    let rt = match Program::from_words("rt", &program.to_words()) {
        Ok(rt) => rt,
        Err(e) => return Some(format!("binary round trip failed to decode: {e}")),
    };
    if rt.instructions() != program.instructions() {
        return Some("binary round trip decoded different instructions".into());
    }
    let mut replay = fresh_sim(width);
    let rt_out = replay.run(&rt);
    if oracle != rt_out {
        return Some(format!(
            "outcome mismatch, interpreter {oracle:?} vs round-trip replay {rt_out:?}"
        ));
    }
    if observable_state(&interp) != observable_state(&replay) {
        return Some("state mismatch, interpreter vs round-trip replay".into());
    }
    None
}

/// Rebuilds a program from an instruction subset (same name).
fn rebuild(name: &str, instrs: &[Instruction]) -> Program {
    let mut p = Program::new(name);
    for &i in instrs {
        p.push(i);
    }
    p
}

/// Greedily shrinks `program` while `fails` keeps returning `true`:
/// first binary suffix truncation (a divergence usually only needs the
/// prefix up to the offending instruction), then repeated
/// single-instruction deletion to a fixed point. The result still
/// satisfies `fails`; deterministic, worst case `O(len²)` executions.
fn shrink_program(program: &Program, fails: &dyn Fn(&Program) -> bool) -> Program {
    let mut current: Vec<Instruction> = program.instructions().to_vec();
    debug_assert!(fails(&rebuild("shrink", &current)));

    // Phase 1: find the shortest failing prefix by bisection.
    let mut lo = 1usize; // shortest length known to be able to fail
    let mut hi = current.len(); // a length that definitely fails
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if fails(&rebuild("shrink", &current[..mid])) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    current.truncate(hi);

    // Phase 2: drop single instructions while the failure reproduces.
    // Restart after each successful deletion — removals can enable each
    // other (e.g. a store only mattered because a later load read it).
    loop {
        let mut improved = false;
        for i in (0..current.len()).rev() {
            let mut candidate = current.clone();
            candidate.remove(i);
            if !candidate.is_empty() && fails(&rebuild("shrink", &candidate)) {
                current = candidate;
                improved = true;
                break;
            }
        }
        if !improved {
            break;
        }
    }
    rebuild("minimal_reproducer", &current)
}

#[test]
fn shrinker_isolates_a_single_offending_instruction() {
    // Plant one gather in a 24-instruction memory-shape program and ask
    // the shrinker to isolate it via a synthetic "fails if any gather"
    // predicate — the greedy pass must reach exactly one instruction.
    let mut p = random_legal_program(7, 24);
    let has_gather = |p: &Program| {
        p.instructions()
            .iter()
            .any(|i| matches!(i, Instruction::VGather { .. }))
    };
    if !has_gather(&p) {
        p.push(Instruction::VGather {
            vd: VReg::at(1),
            base: AReg::at(0),
            offset: 0,
            vi: VReg::at(2),
        });
    }
    let minimal = shrink_program(&p, &has_gather);
    assert_eq!(minimal.instructions().len(), 1, "{}", minimal.to_asm());
    assert!(has_gather(&minimal));
}

#[test]
fn shrinker_keeps_codependent_pairs() {
    // A predicate that needs both a store *and* a later load survives
    // shrinking with both halves intact, in order.
    let mut p = random_legal_program(21, 32);
    let pair = |p: &Program| {
        let is = p.instructions();
        is.iter()
            .position(|i| matches!(i, Instruction::VStore { .. }))
            .is_some_and(|s| {
                is[s + 1..]
                    .iter()
                    .any(|i| matches!(i, Instruction::VLoad { .. }))
            })
    };
    if !pair(&p) {
        p.push(Instruction::VStore {
            vs: VReg::at(3),
            base: AReg::at(0),
            offset: 0,
            mode: AddrMode::Unit,
        });
        p.push(Instruction::VLoad {
            vd: VReg::at(4),
            base: AReg::at(0),
            offset: 0,
            mode: AddrMode::Unit,
        });
    }
    let minimal = shrink_program(&p, &pair);
    assert_eq!(minimal.instructions().len(), 2, "{}", minimal.to_asm());
    assert!(matches!(
        minimal.instructions()[0],
        Instruction::VStore { .. }
    ));
    assert!(matches!(
        minimal.instructions()[1],
        Instruction::VLoad { .. }
    ));
}

/// The gather fault-injection shape must actually fault (otherwise it
/// tests nothing), and on every fault the interpreter and the fast
/// path must return the *same* typed [`ExecError`] — checked here both
/// via the full three-way [`divergence`] oracle and by comparing the
/// error values directly.
#[test]
fn gather_fault_shape_faults_with_error_parity() {
    for &width in enabled_classes() {
        let mut faults = 0usize;
        for seed in 0..48u64 {
            let program = random_shaped_program(seed, 32, GATHER_FAULT_SHAPE);
            assert!(
                divergence(&program, width).is_none(),
                "seed {seed} ({width:?}): paths diverged on a gather-fault program"
            );
            let oracle = fresh_sim(width).run(&program);
            let fast = fresh_sim(width).run_predecoded(&PredecodedProgram::new(program));
            assert_eq!(
                oracle, fast,
                "seed {seed} ({width:?}): typed outcome parity"
            );
            if oracle.is_err() {
                faults += 1;
            }
        }
        assert!(
            faults >= 8,
            "gather fault shape ({width:?}) faulted only {faults}/48 times — injection is toothless"
        );
    }
}

/// Same contract for the SDM-exhaustion shape: scalar/modulus/address
/// loads past the end of the SDM must fault identically (and with the
/// same typed error) on both execution paths.
#[test]
fn sdm_exhaustion_shape_faults_with_error_parity() {
    for &width in enabled_classes() {
        let mut faults = 0usize;
        for seed in 0..48u64 {
            let program = random_shaped_program(seed, 32, SDM_FAULT_SHAPE);
            assert!(
                divergence(&program, width).is_none(),
                "seed {seed} ({width:?}): paths diverged on an SDM-exhaustion program"
            );
            let oracle = fresh_sim(width).run(&program);
            let fast = fresh_sim(width).run_predecoded(&PredecodedProgram::new(program));
            assert_eq!(
                oracle, fast,
                "seed {seed} ({width:?}): typed outcome parity"
            );
            if oracle.is_err() {
                faults += 1;
            }
        }
        assert!(
            faults >= 8,
            "SDM exhaustion shape ({width:?}) faulted only {faults}/48 times — injection is toothless"
        );
    }
}

/// The shrinker keeps working on fault-shape programs: given a
/// faulting reproducer and the predicate "still fails with the same
/// typed error", it reaches a small program whose fault both paths
/// still agree on exactly.
#[test]
fn shrinker_minimizes_fault_injection_reproducers() {
    for &width in enabled_classes() {
        let (program, err) = (0..64u64)
            .find_map(|seed| {
                let p = random_shaped_program(seed, 32, GATHER_FAULT_SHAPE);
                let e = fresh_sim(width).run(&p).err()?;
                Some((p, e))
            })
            .expect("some gather-shape program faults");
        let same_fault = |p: &Program| fresh_sim(width).run(p).err().is_some_and(|e| e == err);
        let minimal = shrink_program(&program, &same_fault);
        assert!(
            minimal.instructions().len() <= 4,
            "shrinker ({width:?}) left {} instructions:\n{}",
            minimal.instructions().len(),
            minimal.to_asm()
        );
        assert!(same_fault(&minimal));
        // The fast path agrees on the minimal reproducer's typed error too.
        let fast = fresh_sim(width).run_predecoded(&PredecodedProgram::new(minimal.clone()));
        assert_eq!(
            fast.err(),
            Some(err),
            "fast path ({width:?}) disagrees on the minimal reproducer:\n{}",
            minimal.to_asm()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(fuzz_cases()))]

    /// Interpreter == fast path == encode/decode round trip, on outcome
    /// and on all observable state, for random legal programs in both
    /// modulus-width classes (native-u64 and Montgomery-residency
    /// engines). On divergence, the failure message carries a greedily
    /// shrunken minimal reproducer instead of the raw random program.
    #[test]
    fn three_executions_of_a_random_program_agree(
        seed in any::<u64>(),
        len in 1usize..48,
        wide in any::<bool>(),
    ) {
        let width = class_for(wide);
        let program = random_legal_program(seed, len);
        if let Some(reason) = divergence(&program, width) {
            let minimal = shrink_program(&program, &|p| divergence(p, width).is_some());
            let final_reason =
                divergence(&minimal, width).expect("shrinker preserves failure");
            prop_assert!(
                false,
                "seed {seed:#x}, len {len}, width {width:?}: {reason}\n\
                 minimal reproducer ({} of {} instructions, {final_reason}):\n{}",
                minimal.instructions().len(),
                len,
                minimal.to_asm(),
            );
        }
    }

    /// The same `PredecodedProgram` value stays oracle-exact when run
    /// repeatedly with evolving state (nothing may be cached between
    /// runs that depends on a particular VDM size or ARF contents).
    #[test]
    fn predecoded_programs_are_reusable(seed in any::<u64>(), wide in any::<bool>()) {
        let width = class_for(wide);
        let program = random_legal_program(seed, 16);
        let pre = PredecodedProgram::new(program.clone());
        let mut interp = fresh_sim(width);
        let mut fast = fresh_sim(width);
        for growth in [0usize, 0, 4096] {
            if growth > 0 {
                interp.ensure_vdm(VDM_ELEMS + growth);
                fast.ensure_vdm(VDM_ELEMS + growth);
            }
            let a = interp.run(&program);
            let b = fast.run_predecoded(&pre);
            prop_assert_eq!(a, b);
            prop_assert_eq!(
                interp.read_vdm(0, VDM_ELEMS).unwrap(),
                fast.read_vdm(0, VDM_ELEMS).unwrap()
            );
        }
    }
}
