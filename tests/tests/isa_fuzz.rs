//! Random-program differential fuzzing over the whole ISA — the seed of
//! the ROADMAP's "ISA fuzz" item.
//!
//! A deterministic generator builds random *legal* B512 programs (every
//! register index valid, every instruction encodable; execution may
//! still fault, and fault parity is part of the contract). Each program
//! is run three ways:
//!
//! 1. the reference interpreter ([`FunctionalSim::run`]) — the oracle;
//! 2. the pre-decoded fast path ([`FunctionalSim::run_predecoded`]);
//! 3. the interpreter again, on the program after an encode → decode
//!    round trip through its binary form.
//!
//! All three must agree on the outcome (`Ok` or the exact `ExecError`)
//! and on every piece of publicly observable architectural state.
//!
//! Programs are drawn from **weighted shape profiles** rather than a
//! uniform instruction mix: memory-heavy, compute-heavy,
//! butterfly/pack, and gather-heavy programs stress different simulator
//! paths (address generation, the modular ALUs, the permute network,
//! and indexed access respectively) far harder than uniform draws do.
//!
//! The case count defaults to 128 and is tunable with `RPU_FUZZ_CASES`
//! (a long soak sets thousands); the generic `PROPTEST_CASES` variable
//! still wins over both when set, since the proptest runner reads it
//! last.

use proptest::prelude::*;
use rpu::isa::{AReg, AddrMode, Instruction, MReg, PredecodedProgram, Program, SReg, VReg};
use rpu::FunctionalSim;

const VDM_ELEMS: usize = 1 << 14;
const SDM_ELEMS: usize = 64;

/// Small valid moduli pre-seeded into `m0..m3` and cycled through the
/// SDM (so `mload`/`aload` pick up values that keep programs mostly
/// alive while still exercising invalid-modulus and OOB faults).
const PRIMES: [u128; 4] = [97, 193, 769, 3329];

/// splitmix64 — deterministic, seedable, no external dependency.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn vreg(&mut self) -> VReg {
        VReg::at(self.below(64) as u8)
    }

    fn sreg(&mut self) -> SReg {
        SReg::at(self.below(64) as u8)
    }

    fn areg(&mut self) -> AReg {
        // Bias towards a0 (= 0) so most addresses stay in bounds, but
        // roam the whole ARF to exercise `aload`-indirected addressing.
        if self.below(4) == 0 {
            AReg::at(self.below(64) as u8)
        } else {
            AReg::at(0)
        }
    }

    fn mreg(&mut self) -> MReg {
        // Mostly the pre-seeded valid moduli; occasionally any MRF entry
        // (usually zero → InvalidModulus, checking fault parity).
        if self.below(8) == 0 {
            MReg::at(self.below(64) as u8)
        } else {
            MReg::at(self.below(4) as u8)
        }
    }

    fn offset(&mut self) -> u32 {
        // Mostly in-bounds for the 2^14-element VDM; occasionally up to
        // the 20-bit architectural field so span checks must fault.
        if self.below(6) == 0 {
            self.below(1 << 20) as u32
        } else {
            self.below(1 << 13) as u32
        }
    }

    fn sdm_offset(&mut self) -> u32 {
        if self.below(8) == 0 {
            self.below(1 << 10) as u32 // usually OOB for the 64-entry SDM
        } else {
            self.below(SDM_ELEMS as u64) as u32
        }
    }

    fn mode(&mut self) -> AddrMode {
        match self.below(4) {
            0 => AddrMode::Unit,
            1 => AddrMode::Strided {
                log2_stride: self.below(5) as u8,
            },
            2 => AddrMode::StridedSkip {
                log2_block: self.below(10) as u8,
            },
            _ => AddrMode::Repeated {
                log2_block: self.below(10) as u8,
            },
        }
    }
}

/// Fuzz case count: `RPU_FUZZ_CASES` overrides the default of 128
/// (raise it for soak runs). The proptest runner's own
/// `PROPTEST_CASES` variable still takes precedence over both.
fn fuzz_cases() -> u32 {
    std::env::var("RPU_FUZZ_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(128)
}

/// A program shape: relative weights over the 18 instruction kinds
/// (indexed as in the generator's match below). Skewed mixes reach
/// deeper into single subsystems than uniform draws — long load/store
/// runs hit address-generation corner cases, dense compute runs hit
/// ALU/fault parity, butterfly/pack runs hit the permute network, and
/// gather runs hit indexed addressing.
const SHAPES: [[u32; 18]; 4] = [
    // Memory-heavy: loads, stores, broadcasts, scalar/modulus/address
    // loads dominate.
    [8, 8, 2, 6, 5, 5, 5, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1],
    // Compute-heavy: the six modular-arithmetic kinds dominate.
    [2, 1, 1, 1, 1, 2, 1, 8, 8, 8, 6, 6, 6, 2, 1, 1, 1, 1],
    // Butterfly/pack: Bfly and the pack/unpack quartet dominate.
    [2, 1, 1, 1, 1, 2, 1, 1, 1, 2, 1, 1, 1, 10, 6, 6, 6, 6],
    // Gather-heavy: indexed access plus the loads that feed it.
    [6, 3, 12, 3, 2, 2, 4, 2, 1, 2, 1, 1, 1, 1, 1, 1, 1, 1],
];

/// Draws an instruction-kind index from a weight table.
fn weighted_kind(r: &mut Rng, weights: &[u32; 18]) -> u64 {
    let total: u64 = weights.iter().map(|&w| u64::from(w)).sum();
    let mut draw = r.below(total);
    for (kind, &w) in weights.iter().enumerate() {
        let w = u64::from(w);
        if draw < w {
            return kind as u64;
        }
        draw -= w;
    }
    unreachable!("draw is below the weight total")
}

/// Generates a random well-formed program of `len` instructions, with
/// the instruction mix drawn from a seed-selected shape profile.
fn random_legal_program(seed: u64, len: usize) -> Program {
    let mut r = Rng(seed);
    let shape = &SHAPES[r.below(SHAPES.len() as u64) as usize];
    let mut p = Program::new(format!("fuzz_{seed:x}"));
    for _ in 0..len {
        let instr = match weighted_kind(&mut r, shape) {
            0 => Instruction::VLoad {
                vd: r.vreg(),
                base: r.areg(),
                offset: r.offset(),
                mode: r.mode(),
            },
            1 => Instruction::VStore {
                vs: r.vreg(),
                base: r.areg(),
                offset: r.offset(),
                mode: r.mode(),
            },
            2 => Instruction::VGather {
                vd: r.vreg(),
                base: r.areg(),
                offset: r.offset(),
                vi: r.vreg(),
            },
            3 => Instruction::VBroadcast {
                vd: r.vreg(),
                base: r.areg(),
                offset: r.offset(),
            },
            4 => Instruction::SLoad {
                rt: r.sreg(),
                base: r.areg(),
                offset: r.sdm_offset(),
            },
            5 => Instruction::MLoad {
                rt: r.mreg(),
                base: r.areg(),
                offset: r.sdm_offset(),
            },
            6 => Instruction::ALoad {
                rt: r.areg(),
                base: r.areg(),
                offset: r.sdm_offset(),
            },
            7 => Instruction::VAddMod {
                vd: r.vreg(),
                vs: r.vreg(),
                vt: r.vreg(),
                rm: r.mreg(),
            },
            8 => Instruction::VSubMod {
                vd: r.vreg(),
                vs: r.vreg(),
                vt: r.vreg(),
                rm: r.mreg(),
            },
            9 => Instruction::VMulMod {
                vd: r.vreg(),
                vs: r.vreg(),
                vt: r.vreg(),
                rm: r.mreg(),
            },
            10 => Instruction::VSAddMod {
                vd: r.vreg(),
                vs: r.vreg(),
                rt: r.sreg(),
                rm: r.mreg(),
            },
            11 => Instruction::VSSubMod {
                vd: r.vreg(),
                vs: r.vreg(),
                rt: r.sreg(),
                rm: r.mreg(),
            },
            12 => Instruction::VSMulMod {
                vd: r.vreg(),
                vs: r.vreg(),
                rt: r.sreg(),
                rm: r.mreg(),
            },
            13 => Instruction::Bfly {
                vd: r.vreg(),
                vd1: r.vreg(),
                vs: r.vreg(),
                vt: r.vreg(),
                vt1: r.vreg(),
                rm: r.mreg(),
            },
            14 => Instruction::UnpkLo {
                vd: r.vreg(),
                vs: r.vreg(),
                vt: r.vreg(),
            },
            15 => Instruction::UnpkHi {
                vd: r.vreg(),
                vs: r.vreg(),
                vt: r.vreg(),
            },
            16 => Instruction::PkLo {
                vd: r.vreg(),
                vs: r.vreg(),
                vt: r.vreg(),
            },
            _ => Instruction::PkHi {
                vd: r.vreg(),
                vs: r.vreg(),
                vt: r.vreg(),
            },
        };
        p.push(instr);
    }
    p
}

/// A fully seeded simulator: non-trivial VDM image, SDM holding small
/// valid primes, `m0..m3` and `s0..s3` preset.
fn fresh_sim() -> FunctionalSim {
    let mut sim = FunctionalSim::new(VDM_ELEMS, SDM_ELEMS);
    let image: Vec<u128> = (0..VDM_ELEMS as u128)
        .map(|i| (i * 37 + 11) % 3329)
        .collect();
    sim.write_vdm(0, &image).unwrap();
    let sdm: Vec<u128> = (0..SDM_ELEMS).map(|i| PRIMES[i % PRIMES.len()]).collect();
    sim.write_sdm(0, &sdm).unwrap();
    for (i, &q) in PRIMES.iter().enumerate() {
        sim.set_mrf(MReg::at(i as u8), q);
        sim.set_srf(SReg::at(i as u8), q / 3);
    }
    sim
}

/// Everything an integration test can observe of a simulator's state.
fn observable_state(sim: &FunctionalSim) -> (Vec<u128>, Vec<Vec<u128>>, Vec<u128>) {
    let vdm = sim.read_vdm(0, VDM_ELEMS).unwrap();
    let vregs: Vec<Vec<u128>> = (0..64).map(|v| sim.vreg(VReg::at(v)).to_vec()).collect();
    let sregs: Vec<u128> = (0..64).map(|s| sim.sreg(SReg::at(s))).collect();
    (vdm, vregs, sregs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(fuzz_cases()))]

    /// Interpreter == fast path == encode/decode round trip, on outcome
    /// and on all observable state, for random legal programs.
    #[test]
    fn three_executions_of_a_random_program_agree(
        seed in any::<u64>(),
        len in 1usize..48,
    ) {
        let program = random_legal_program(seed, len);

        let mut interp = fresh_sim();
        let oracle = interp.run(&program);

        let mut fast = fresh_sim();
        let fast_out = fast.run_predecoded(&PredecodedProgram::new(program.clone()));
        prop_assert_eq!(&oracle, &fast_out, "outcome: fast path vs interpreter");
        prop_assert_eq!(observable_state(&interp), observable_state(&fast));

        let rt = Program::from_words("rt", &program.to_words()).expect("round trip decodes");
        prop_assert_eq!(rt.instructions(), program.instructions());
        let mut replay = fresh_sim();
        let rt_out = replay.run(&rt);
        prop_assert_eq!(&oracle, &rt_out, "outcome: round trip vs interpreter");
        prop_assert_eq!(observable_state(&interp), observable_state(&replay));
    }

    /// The same `PredecodedProgram` value stays oracle-exact when run
    /// repeatedly with evolving state (nothing may be cached between
    /// runs that depends on a particular VDM size or ARF contents).
    #[test]
    fn predecoded_programs_are_reusable(seed in any::<u64>()) {
        let program = random_legal_program(seed, 16);
        let pre = PredecodedProgram::new(program.clone());
        let mut interp = fresh_sim();
        let mut fast = fresh_sim();
        for growth in [0usize, 0, 4096] {
            if growth > 0 {
                interp.ensure_vdm(VDM_ELEMS + growth);
                fast.ensure_vdm(VDM_ELEMS + growth);
            }
            let a = interp.run(&program);
            let b = fast.run_predecoded(&pre);
            prop_assert_eq!(a, b);
            prop_assert_eq!(
                interp.read_vdm(0, VDM_ELEMS).unwrap(),
                fast.read_vdm(0, VDM_ELEMS).unwrap()
            );
        }
    }
}
