//! Cross-backend differential harness: every execution path that can
//! compute a negacyclic product must agree bit-exactly, whatever the
//! `(n, q)` shape and however the work is sharded.
//!
//! Backends compared:
//! * the fused RPU convolution kernel ([`ConvolutionSpec`], functional
//!   simulator);
//! * the host NTT polynomial library ([`Polynomial::mul`]);
//! * the `O(n²)` naive transform ([`baseline::naive_forward`] /
//!   [`naive_inverse`](baseline::naive_inverse)), for the smallest ring;
//! * single-lane vs multi-lane [`RnsExecutor`] runs (the scheduler may
//!   place towers anywhere; results must not depend on placement).
//!
//! Ring sizes honour `RPU_MAX_N` so the CI matrix can run the suite at
//! 1024 and 4096.

use proptest::prelude::*;
use rpu::arith::{find_ntt_prime_chain, Modulus128};
use rpu::ntt::baseline;
use rpu::ntt::{Ntt128Plan, Polynomial};
use rpu::{
    AutomorphismSpec, CodegenStyle, ConvolutionSpec, Direction, ElementwiseOp, ElementwiseSpec,
    KernelSpec, KeySwitchSpec, NttSpec, RnsExecutor, Rpu,
};

/// A deterministic residue vector mod `q`.
fn residues(n: usize, q: u128, seed: u64) -> Vec<u128> {
    (0..n as u128)
        .map(|i| {
            i.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(seed as u128)
                .wrapping_mul(0x2545_F491_4F6C_DD1D)
                % q
        })
        .collect()
}

/// The host polynomial-library product (`Polynomial::mul` over an
/// `Ntt128Plan` context).
fn poly_mul_reference(n: usize, q: u128, a: &[u128], b: &[u128]) -> Vec<u128> {
    let ctx = Polynomial::context(n, q).expect("valid (n, q)");
    let pa = Polynomial::from_coeffs(&ctx, a.to_vec()).expect("valid coeffs");
    let pb = Polynomial::from_coeffs(&ctx, b.to_vec()).expect("valid coeffs");
    pa.mul(&pb).coeffs()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Fused kernel == host polynomial library across random `(n, q)`.
    #[test]
    fn fused_kernel_matches_polynomial_mul(
        nsel in 0usize..3,
        bits in prop_oneof![Just(50u32), Just(60), Just(90), Just(120)],
        pick in 0usize..2,
        seed in any::<u64>(),
    ) {
        let n = rpu::smoke_cap([1024usize, 2048, 4096][nsel]);
        let chain = find_ntt_prime_chain(bits, 2 * n as u128, 2);
        let q = chain[pick.min(chain.len() - 1)];
        let a = residues(n, q, seed);
        let b = residues(n, q, seed ^ 0xABCD);
        let kernel = ConvolutionSpec::new(n, q, CodegenStyle::Optimized)
            .generate()
            .expect("supported shape");
        let fused = kernel.execute(&[&a, &b]).expect("kernel runs");
        prop_assert_eq!(&fused, &poly_mul_reference(n, q, &a, &b));
    }

    /// Single-lane and multi-lane executor runs are bit-exact: results
    /// must not depend on which lane stole which tower.
    #[test]
    fn lane_count_never_changes_results(
        towers in 2usize..5,
        lanes in 2usize..5,
        seed in any::<u64>(),
    ) {
        let n = rpu::smoke_cap(1024);
        let primes = find_ntt_prime_chain(60, 2 * n as u128, towers);
        prop_assert_eq!(primes.len(), towers);
        let a: Vec<Vec<u128>> =
            primes.iter().enumerate().map(|(t, &q)| residues(n, q, seed ^ t as u64)).collect();
        let b: Vec<Vec<u128>> = primes
            .iter()
            .enumerate()
            .map(|(t, &q)| residues(n, q, seed ^ (t as u64) << 16 ^ 0xF00D))
            .collect();

        let rpu = Rpu::builder().build().unwrap();
        let mut single = RnsExecutor::new(rpu.cluster_with(1));
        let (seq, seq_report) = single.negacyclic_mul_towers(n, &primes, &a, &b).unwrap();

        let wide = Rpu::builder().lanes(lanes).build().unwrap();
        let mut multi = RnsExecutor::new(wide.cluster());
        let (par, par_report) = multi.negacyclic_mul_towers(n, &primes, &a, &b).unwrap();

        prop_assert_eq!(seq, par);
        prop_assert_eq!(seq_report.lanes_used(), 1);
        // same total work, whatever the placement
        prop_assert_eq!(seq_report.total_cycles, par_report.total_cycles);
    }
}

/// The naive `O(n²)` transform agrees with both fast paths at the base
/// ring size (golden anchoring for the whole differential chain).
#[test]
fn naive_transform_anchors_the_fast_paths() {
    let n = 1024usize;
    for bits in [60u32, 120] {
        let q = find_ntt_prime_chain(bits, 2 * n as u128, 1)[0];
        let m = Modulus128::new(q).expect("prime in range");
        let psi = Ntt128Plan::new(n, q).expect("plan exists").psi();
        let a = residues(n, q, 11);
        let b = residues(n, q, 17);

        // negacyclic product out of the naive transform
        let fa = baseline::naive_forward(m, psi, &a);
        let fb = baseline::naive_forward(m, psi, &b);
        let prod: Vec<u128> = fa.iter().zip(&fb).map(|(&x, &y)| m.mul(x, y)).collect();
        let naive = baseline::naive_inverse(m, psi, &prod);

        assert_eq!(naive, poly_mul_reference(n, q, &a, &b), "bits={bits}");
        let kernel = ConvolutionSpec::new(n, q, CodegenStyle::Optimized)
            .generate()
            .expect("supported shape");
        assert_eq!(
            kernel.execute(&[&a, &b]).expect("runs"),
            naive,
            "bits={bits}"
        );
    }
}

/// Compiles `spec`, dispatches it over resident buffers on `rpu`, and
/// returns the downloaded output (one full resident round trip through
/// whichever executor the instance selects).
fn dispatch_once(rpu: &Rpu, spec: &dyn KernelSpec, operands: &[Vec<u128>]) -> Vec<u128> {
    let mut s = rpu.session();
    let kernel = s.compile(spec).expect("spec compiles");
    let inputs: Vec<_> = operands
        .iter()
        .map(|op| s.upload(op).expect("operand uploads"))
        .collect();
    let out = s.alloc(kernel.output_range().1).expect("output allocates");
    s.dispatch(&kernel, &inputs, &[out]).expect("dispatches");
    s.download(&out).expect("downloads")
}

/// Every kernel family, dispatched on the default (pre-decoded fast
/// path) executor and on a `force_interpreter` instance, must produce
/// bit-identical outputs — and both must equal the host-side
/// interpreter run (`Kernel::execute`), closing the loop on the
/// interpreter-as-oracle contract for random inputs.
#[test]
fn fast_path_matches_interpreter_for_every_kernel_family() {
    let n = rpu::smoke_cap(2048);
    let q = find_ntt_prime_chain(120, 2 * n as u128, 1)[0];
    let style = CodegenStyle::Optimized;
    let fast = Rpu::builder().build().unwrap();
    let oracle = Rpu::builder().force_interpreter(true).build().unwrap();
    assert!(!fast.force_interpreter());
    assert!(oracle.force_interpreter());

    let families: Vec<(&str, Box<dyn KernelSpec>)> = vec![
        (
            "ntt-fwd",
            Box::new(NttSpec::new(n, q, Direction::Forward, style)),
        ),
        (
            "ntt-inv",
            Box::new(NttSpec::new(n, q, Direction::Inverse, style)),
        ),
        (
            "pwmul",
            Box::new(ElementwiseSpec::new(ElementwiseOp::MulMod, n, q, style)),
        ),
        (
            "pwadd",
            Box::new(ElementwiseSpec::new(ElementwiseOp::AddMod, n, q, style)),
        ),
        (
            "pwsub",
            Box::new(ElementwiseSpec::new(ElementwiseOp::SubMod, n, q, style)),
        ),
        ("conv", Box::new(ConvolutionSpec::new(n, q, style))),
        ("autom", Box::new(AutomorphismSpec::new(n, q, 5, style))),
        ("keyswitch", Box::new(KeySwitchSpec::new(n, q, style))),
    ];
    for (i, (label, spec)) in families.iter().enumerate() {
        let kernel = spec.generate().expect("spec generates");
        let operands: Vec<Vec<u128>> = (0..kernel.arity())
            .map(|k| residues(n, q, (i as u64) << 8 | k as u64))
            .collect();
        let refs: Vec<&[u128]> = operands.iter().map(Vec::as_slice).collect();
        let host = kernel.execute(&refs).expect("host oracle runs");
        let fast_out = dispatch_once(&fast, spec.as_ref(), &operands);
        let oracle_out = dispatch_once(&oracle, spec.as_ref(), &operands);
        assert_eq!(
            fast_out, oracle_out,
            "family {label}: fast path vs interpreter"
        );
        assert_eq!(fast_out, host, "family {label}: dispatch vs host oracle");
    }
}

/// Lane sharding composed with the fast path: tower results at lanes
/// 1, 2, and 4 must all equal a single-lane `force_interpreter` run.
#[test]
fn fast_path_is_bit_exact_across_lane_counts() {
    let n = rpu::smoke_cap(1024);
    let towers = 4usize;
    let primes = find_ntt_prime_chain(60, 2 * n as u128, towers);
    assert_eq!(primes.len(), towers);
    let a: Vec<Vec<u128>> = primes
        .iter()
        .enumerate()
        .map(|(t, &q)| residues(n, q, 300 + t as u64))
        .collect();
    let b: Vec<Vec<u128>> = primes
        .iter()
        .enumerate()
        .map(|(t, &q)| residues(n, q, 400 + t as u64))
        .collect();

    let interp = Rpu::builder().force_interpreter(true).build().unwrap();
    let mut oracle = RnsExecutor::new(interp.cluster_with(1));
    let (want, _) = oracle.negacyclic_mul_towers(n, &primes, &a, &b).unwrap();

    for lanes in [1usize, 2, 4] {
        let rpu = Rpu::builder().lanes(lanes).build().unwrap();
        let mut exec = RnsExecutor::new(rpu.cluster());
        let (got, _) = exec.negacyclic_mul_towers(n, &primes, &a, &b).unwrap();
        assert_eq!(got, want, "lanes={lanes}");
    }
}

/// The acceptance shape: an 8-tower multiply at the (possibly capped)
/// 4K ring through a ≥2-lane `RnsExecutor` is bit-exact with the host
/// `Polynomial::mul` per tower, and the sharded run's simulated
/// throughput beats the sequential single-session loop.
#[test]
fn eight_tower_multiply_on_two_lanes_is_exact_and_faster() {
    let n = rpu::smoke_cap(4096);
    let towers = 8usize;
    let primes = find_ntt_prime_chain(120, 2 * n as u128, towers);
    assert_eq!(primes.len(), towers);
    let a: Vec<Vec<u128>> = primes
        .iter()
        .enumerate()
        .map(|(t, &q)| residues(n, q, 100 + t as u64))
        .collect();
    let b: Vec<Vec<u128>> = primes
        .iter()
        .enumerate()
        .map(|(t, &q)| residues(n, q, 200 + t as u64))
        .collect();

    let rpu = Rpu::builder().lanes(2).build().unwrap();
    let mut exec = RnsExecutor::new(rpu.cluster());
    // A pathologically loaded host can starve one lane thread for a
    // whole run; re-running (with now-warm kernel caches) makes that
    // astronomically unlikely to repeat. Exactness is asserted on
    // every attempt — only the load split is timing-dependent.
    let mut balanced = None;
    for _ in 0..3 {
        let (got, report) = exec.negacyclic_mul_towers(n, &primes, &a, &b).unwrap();
        for (t, &q) in primes.iter().enumerate() {
            assert_eq!(
                got[t],
                poly_mul_reference(n, q, &a[t], &b[t]),
                "tower {t} must match Polynomial::mul"
            );
        }
        assert_eq!(report.towers, towers);
        // With 8 equal-cost towers on 2 lanes even a skewed 5/3 split
        // clears 1.4x (the ideal 4/4 split gives 2.0x — see
        // benches/cluster.rs and EXPERIMENTS.md for the measured
        // scaling).
        if report.lanes_used() == 2 && report.speedup() > 1.4 {
            balanced = Some(report);
            break;
        }
    }
    let report = balanced.expect("2 lanes must beat the sequential loop by >1.4x within 3 runs");
    assert!(report.makespan_us < report.sequential_us);
}
