//! Cross-crate integration tests: the full pipeline from prime search
//! through codegen, binary encoding, functional execution, cycle timing,
//! and the hardware models.

use rpu::{CodegenStyle, CycleSim, Direction, FunctionalSim, NttKernel, Rpu, RpuConfig};

/// The complete flow for one ring size, through every crate:
/// prime (arith) → schedule (ntt) → kernel (codegen) → binary round trip
/// (isa) → functional execution (sim) → golden comparison (ntt) → cycle
/// timing (sim) → area/energy (model).
fn full_stack(n: usize) {
    let q = rpu::arith::find_ntt_prime_u128(126, 2 * n as u128).expect("prime exists");
    let kernel =
        NttKernel::generate(n, q, Direction::Forward, CodegenStyle::Optimized).expect("generates");

    // Binary round trip through the 64-bit instruction words.
    let words = kernel.program().to_words();
    let decoded = rpu::isa::Program::from_words("rt", &words).expect("decodes");
    assert_eq!(decoded.instructions(), kernel.program().instructions());

    // Assembly round trip.
    let asm = kernel.program().to_asm();
    let parsed = rpu::isa::parse_asm("rt", &asm).expect("parses");
    assert_eq!(parsed.instructions(), kernel.program().instructions());

    // Functional execution of the *decoded* program matches the golden
    // model (proves the encoding carries full semantics).
    let input: Vec<u128> = (0..n as u128).map(|i| (i * i + 17) % q).collect();
    let mut sim = FunctionalSim::new(kernel.layout().total_elements, 16);
    sim.write_vdm(0, &kernel.vdm_image(&input)).unwrap();
    sim.write_sdm(0, &kernel.sdm_image()).unwrap();
    sim.run(&decoded).expect("executes");
    let (off, len) = kernel.output_range();
    assert_eq!(
        sim.read_vdm(off, len).unwrap(),
        kernel.expected_output(&input)
    );

    // Cycle timing is positive and the energy model consumes the stats.
    let cs = CycleSim::new(RpuConfig::pareto_128x128()).expect("valid config");
    let stats = cs.simulate(&decoded);
    assert!(stats.cycles > 0);
    let energy = rpu::EnergyModel::default().breakdown(&stats);
    assert!(energy.total_uj() > 0.0);
}

#[test]
fn full_stack_1k() {
    full_stack(1024);
}

#[test]
fn full_stack_4k() {
    full_stack(4096);
}

#[test]
fn full_stack_inverse_round_trip() {
    // forward kernel output fed to inverse kernel recovers the input,
    // with both executed from their binary encodings
    let n = 1024usize;
    let q = rpu::arith::find_ntt_prime_u128(126, 2 * n as u128).unwrap();
    let fwd = NttKernel::generate(n, q, Direction::Forward, CodegenStyle::Optimized).unwrap();
    let inv = NttKernel::generate(n, q, Direction::Inverse, CodegenStyle::Optimized).unwrap();
    let input: Vec<u128> = (0..n as u128).map(|i| (i * 31 + 5) % q).collect();

    let run = |k: &NttKernel, data: &[u128]| {
        let p = rpu::isa::Program::from_words("x", &k.program().to_words()).unwrap();
        let mut sim = FunctionalSim::new(k.layout().total_elements, 16);
        sim.write_vdm(0, &k.vdm_image(data)).unwrap();
        sim.write_sdm(0, &k.sdm_image()).unwrap();
        sim.run(&p).unwrap();
        let (off, len) = k.output_range();
        sim.read_vdm(off, len).unwrap()
    };
    let transformed = run(&fwd, &input);
    assert_eq!(run(&inv, &transformed), input);
}

#[test]
fn headline_metrics_reproduced() {
    // The paper's headline: 64K, 128-bit NTT in ~6.7 us on ~20.5 mm².
    let rpu = Rpu::new(RpuConfig::pareto_128x128()).unwrap();
    let run = rpu
        .session()
        .ntt(65536, Direction::Forward, CodegenStyle::Optimized)
        .unwrap();
    assert!(run.verified, "64K kernel must validate");
    assert!(
        run.runtime_us > 3.0 && run.runtime_us < 9.0,
        "64K runtime should be in the 6.7 us ballpark, got {:.2}",
        run.runtime_us
    );
    let area = rpu.area().total();
    assert!((area - 20.5).abs() < 0.5, "got {area:.2} mm2");
    let energy = run.energy.total_uj();
    assert!(
        (energy - 49.18).abs() < 5.0,
        "64K energy should be ~49.18 uJ, got {energy:.2}"
    );
}

#[test]
fn rpu_beats_cpu_on_big_rings() {
    // Shape of Fig. 10: simulated RPU runtime far below measured CPU
    // runtime for the 128-bit 4K NTT on this host.
    let n = 4096usize;
    let rpu = Rpu::new(RpuConfig::pareto_128x128()).unwrap();
    let run = rpu
        .session()
        .ntt(n, Direction::Forward, CodegenStyle::Optimized)
        .unwrap();
    let baseline = rpu::ntt::baseline::CpuBaseline::new(n).unwrap();
    let cpu = baseline.measure(rpu::ntt::baseline::CpuWidth::Bits128, 1, 3);
    let speedup = cpu.time_per_ntt.as_secs_f64() * 1e6 / run.runtime_us;
    assert!(
        speedup > 10.0,
        "RPU should be orders of magnitude faster; got {speedup:.1}x"
    );
}

#[test]
fn mixed_tower_moduli_via_mrf() {
    // The MRF "enables modulus changing at the instruction granularity,
    // enabling the potential to process different towers simultaneously":
    // run adds on two different moduli back to back in one program.
    use rpu::isa::{AReg, AddrMode, Instruction, MReg, VReg};
    let mut p = rpu::isa::Program::new("two-towers");
    let v = VReg::at;
    p.push(Instruction::VLoad {
        vd: v(0),
        base: AReg::at(0),
        offset: 0,
        mode: AddrMode::Unit,
    });
    p.push(Instruction::VLoad {
        vd: v(1),
        base: AReg::at(0),
        offset: 512,
        mode: AddrMode::Unit,
    });
    p.push(Instruction::VAddMod {
        vd: v(2),
        vs: v(0),
        vt: v(1),
        rm: MReg::at(0),
    });
    p.push(Instruction::VAddMod {
        vd: v(3),
        vs: v(0),
        vt: v(1),
        rm: MReg::at(1),
    });

    let mut sim = FunctionalSim::new(2048, 16);
    sim.set_mrf(MReg::at(0), 97);
    sim.set_mrf(MReg::at(1), 101);
    sim.write_vdm(0, &vec![60u128; 512]).unwrap();
    sim.write_vdm(512, &vec![50u128; 512]).unwrap();
    sim.run(&p).unwrap();
    assert_eq!(sim.vreg(v(2))[0], 110 % 97);
    assert_eq!(sim.vreg(v(3))[0], 110 % 101);
}
