//! Serving-layer integration tests: multi-tenant differential
//! correctness against the host RLWE reference, weighted-fair
//! scheduling bounds read off the structured dispatch trace, typed
//! backpressure, tenant isolation, and the rekey/teardown buffer
//! lifecycle.

use proptest::prelude::*;
use rpu::ntt::rlwe::{Ciphertext, RlweContext, RlweParams, Splitmix};
use rpu::{DispatchEvent, RingTraceSink, Rpu};
use rpu_serve::{
    serve, CtHandle, JobOutput, JobRequest, ServeConfig, ServeError, ServerHandle, TenantId,
    TenantSpec,
};
use std::sync::Arc;

const N: usize = 1024;
const T: u128 = 65537;

fn params(rpu: &Rpu) -> RlweParams {
    let q = rpu.session().primes_for(N).expect("prime exists");
    RlweParams { n: N, q, t: T }
}

fn message(seed: u128) -> Vec<u128> {
    (0..N as u128).map(|i| (i * 17 + seed) % 97).collect()
}

fn ct_of(out: JobOutput) -> CtHandle {
    match out {
        JobOutput::Ciphertext(ct) => ct,
        other => panic!("expected ciphertext, got {other:?}"),
    }
}

fn plain_of(out: JobOutput) -> Vec<u128> {
    match out {
        JobOutput::Plaintext(p) => p,
        other => panic!("expected plaintext, got {other:?}"),
    }
}

fn submit_wait(server: &ServerHandle, tenant: TenantId, req: JobRequest) -> JobOutput {
    server
        .submit(tenant, req)
        .expect("submission accepted")
        .wait()
        .expect("job succeeds")
}

/// Three tenants on two lanes, each driven from its own client thread:
/// encrypt, multiply, rotate, dot-product, decrypt. Every decrypted
/// vector must be bit-identical to a host-side [`RlweContext`] mirror
/// replaying the same per-tenant randomness stream — concurrency and
/// batching must not perturb any tenant's results.
#[test]
fn concurrent_tenants_match_host_mirror() {
    let rpu = Rpu::builder().lanes(2).build().unwrap();
    let p = params(&rpu);
    let seeds: [u64; 3] = [0xA11CE, 0xB0B5, 0xC4A7];

    let (got, report) = serve(&rpu, ServeConfig::new(p), |server| {
        std::thread::scope(|scope| {
            let handles: Vec<_> = seeds
                .iter()
                .enumerate()
                .map(|(i, &seed)| {
                    let server = server.clone();
                    scope.spawn(move || {
                        let tenant = server
                            .register_tenant(TenantSpec::new(seed).rotations(vec![1]))
                            .unwrap();
                        let m1 = message(i as u128 + 1);
                        let m2 = message(i as u128 + 100);
                        let e1 = ct_of(submit_wait(
                            &server,
                            tenant,
                            JobRequest::Encrypt { message: m1 },
                        ));
                        let e2 = ct_of(submit_wait(
                            &server,
                            tenant,
                            JobRequest::Encrypt { message: m2 },
                        ));
                        let prod = ct_of(submit_wait(
                            &server,
                            tenant,
                            JobRequest::Mul { x: e1, y: e2 },
                        ));
                        let rot = ct_of(submit_wait(
                            &server,
                            tenant,
                            JobRequest::Rotate { ct: prod, steps: 1 },
                        ));
                        let dot = ct_of(submit_wait(
                            &server,
                            tenant,
                            JobRequest::Dot {
                                x: e1,
                                y: e2,
                                len: 3,
                            },
                        ));
                        [prod, rot, dot].map(|ct| {
                            plain_of(submit_wait(&server, tenant, JobRequest::Decrypt { ct }))
                        })
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("client thread succeeds"))
                .collect::<Vec<_>>()
        })
    })
    .unwrap();
    assert_eq!(report.completed, 3 * 8);
    assert_eq!(report.rejected, 0);

    // Host mirror: same per-tenant stream, same draw order (keys at
    // registration, then encrypt randomness in submission order), same
    // operation dataflow.
    let ctx = RlweContext::new(p).unwrap();
    for (i, &seed) in seeds.iter().enumerate() {
        let mut rng = Splitmix::new(seed);
        let sk = ctx.keygen(&mut rng);
        let rk = ctx.relin_keygen(&sk, &mut rng, 16);
        let gk = ctx
            .galois_keygen(&sk, ctx.galois_element(1), &mut rng, 16)
            .unwrap();
        let c1 = ctx.encrypt(&sk, &message(i as u128 + 1), &mut rng);
        let c2 = ctx.encrypt(&sk, &message(i as u128 + 100), &mut rng);
        let prod = ctx.mul(&rk, &c1, &c2);
        let rot = ctx.apply_galois(&gk, &prod).unwrap();
        let dot = {
            let first = ctx.mul(&rk, &c1, &c2);
            let mut acc = first.clone();
            let mut cur = first;
            for _ in 1..3 {
                cur = ctx.apply_galois(&gk, &cur).unwrap();
                acc = ctx.add(&acc, &cur);
            }
            acc
        };
        let expect = |ct: &Ciphertext| -> Vec<u128> { ctx.decrypt(&sk, ct) };
        assert_eq!(got[i][0], expect(&prod), "tenant {i} product");
        assert_eq!(got[i][1], expect(&rot), "tenant {i} rotation");
        assert_eq!(got[i][2], expect(&dot), "tenant {i} dot product");
    }
}

/// Converts the raw per-dispatch trace into job units for two tenants
/// submitting same-kind jobs: every `Encrypt` job issues the same
/// fixed number of device dispatches, so a tenant's job count is its
/// tenant-tagged event count divided by that per-job cost. Admin
/// dispatches (keygen at registration) carry no tenant tag and drop
/// out of the filter. Returns `(gate_jobs_seen, other_jobs_before)`:
/// the gate tenant's total completed jobs and how many of the other
/// tenant's jobs were dispatched before the gate's backlog drained.
fn jobs_before_gate_drains(
    events: &[DispatchEvent],
    gate: TenantId,
    gate_jobs: usize,
    other: TenantId,
) -> (usize, usize) {
    let gate_tag = Some(gate.index() as u32);
    let other_tag = Some(other.index() as u32);
    // Every traced dispatch must name the engine its kernel's modulus
    // width selects — serving batches must not perturb engine choice.
    for event in events {
        assert_eq!(
            event.engine,
            rpu::EngineKind::for_modulus(event.key.q),
            "dispatch {} of kernel {:?} reported the wrong engine",
            event.seq,
            event.key.op
        );
    }
    let gate_total = events.iter().filter(|e| e.tenant == gate_tag).count();
    assert!(
        gate_jobs > 0 && gate_total >= gate_jobs && gate_total % gate_jobs == 0,
        "gate tenant recorded {gate_total} dispatches, not a multiple of {gate_jobs} jobs"
    );
    let per_job = gate_total / gate_jobs;
    let mut gate_events = 0usize;
    let mut other_events = 0usize;
    for event in events {
        if event.tenant == gate_tag {
            gate_events += 1;
        } else if event.tenant == other_tag && gate_events < gate_total {
            other_events += 1;
        }
    }
    (gate_events / per_job, other_events / per_job)
}

/// Runs a two-tenant single-lane flood with the queues prefilled under
/// `pause`, then reads the dispatch trace back: returns how many heavy
/// jobs were dispatched before the light tenant's backlog finished.
fn heavy_jobs_before_light_done(
    heavy_weight: u32,
    light_weight: u32,
    heavy_jobs: usize,
    light_jobs: usize,
) -> (usize, usize) {
    let sink = Arc::new(RingTraceSink::new(1 << 16));
    let rpu = Rpu::builder().lanes(1).trace(sink.clone()).build().unwrap();
    let p = params(&rpu);
    let (counts, _report) = serve(&rpu, ServeConfig::new(p), |server| {
        let heavy = server
            .register_tenant(TenantSpec::new(1).weight(heavy_weight))
            .unwrap();
        let light = server
            .register_tenant(TenantSpec::new(2).weight(light_weight))
            .unwrap();
        server.pause();
        let mut tickets = Vec::new();
        for _ in 0..heavy_jobs {
            tickets.push(
                server
                    .submit(
                        heavy,
                        JobRequest::Encrypt {
                            message: message(1),
                        },
                    )
                    .unwrap(),
            );
        }
        for _ in 0..light_jobs {
            tickets.push(
                server
                    .submit(
                        light,
                        JobRequest::Encrypt {
                            message: message(2),
                        },
                    )
                    .unwrap(),
            );
        }
        server.resume();
        for t in tickets {
            t.wait().unwrap();
        }
        server.wait_all();
        let (light_seen, heavy_before) =
            jobs_before_gate_drains(&sink.events(), light, light_jobs, heavy);
        (heavy_before, light_seen)
    })
    .unwrap();
    counts
}

/// Equal weights: a tenant flooding 40 jobs gets no more than its fair
/// share (plus batching slack) before a light 8-job tenant drains.
#[test]
fn saturating_tenant_cannot_starve_equal_weight_tenant() {
    let (heavy_before, light_seen) = heavy_jobs_before_light_done(1, 1, 40, 8);
    assert_eq!(light_seen, 8);
    // Fair share for equal weights is parity; allow two batch quanta
    // of slack for in-flight granularity.
    assert!(
        heavy_before <= 8 + 2 * 4,
        "heavy got {heavy_before} jobs before light finished"
    );
}

/// A weight-3 tenant should get roughly 3× the service of a weight-1
/// tenant while both are backlogged.
#[test]
fn weighted_shares_are_respected() {
    let sink = Arc::new(RingTraceSink::new(1 << 16));
    let rpu = Rpu::builder().lanes(1).trace(sink.clone()).build().unwrap();
    let p = params(&rpu);
    let ((a_total, b_when_a_done), _report) = serve(&rpu, ServeConfig::new(p), |server| {
        let a = server
            .register_tenant(TenantSpec::new(1).weight(3))
            .unwrap();
        let b = server
            .register_tenant(TenantSpec::new(2).weight(1))
            .unwrap();
        server.pause();
        let mut tickets = Vec::new();
        for _ in 0..24 {
            tickets.push(
                server
                    .submit(
                        a,
                        JobRequest::Encrypt {
                            message: message(1),
                        },
                    )
                    .unwrap(),
            );
            tickets.push(
                server
                    .submit(
                        b,
                        JobRequest::Encrypt {
                            message: message(2),
                        },
                    )
                    .unwrap(),
            );
        }
        server.resume();
        for t in tickets {
            t.wait().unwrap();
        }
        server.wait_all();
        jobs_before_gate_drains(&sink.events(), a, 24, b)
    })
    .unwrap();
    assert_eq!(a_total, 24);
    // WFQ with weights 3:1 serves B about 24/3 = 8 jobs while A's
    // backlog drains; allow a batch quantum of slack either way.
    assert!(
        (4..=16).contains(&b_when_a_done),
        "weight-1 tenant got {b_when_a_done} jobs while weight-3 drained 24"
    );
}

/// Backpressure: the capacity'th+1 submission is rejected with the
/// typed error instead of queueing, and capacity frees up as tickets
/// drain.
#[test]
fn queue_full_surfaces_instead_of_unbounded_growth() {
    let rpu = Rpu::builder().lanes(1).build().unwrap();
    let p = params(&rpu);
    let mut config = ServeConfig::new(p);
    config.capacity = 4;
    serve(&rpu, config, |server| {
        let tenant = server.register_tenant(TenantSpec::new(9)).unwrap();
        server.pause();
        let tickets: Vec<_> = (0..4)
            .map(|_| {
                server
                    .submit(
                        tenant,
                        JobRequest::Encrypt {
                            message: message(3),
                        },
                    )
                    .expect("within capacity")
            })
            .collect();
        let err = server
            .submit(
                tenant,
                JobRequest::Encrypt {
                    message: message(3),
                },
            )
            .expect_err("over capacity");
        assert_eq!(
            err,
            ServeError::QueueFull {
                tenant,
                capacity: 4
            }
        );
        server.resume();
        for t in tickets {
            t.wait().unwrap();
        }
        // Draining restored capacity.
        submit_wait(
            server,
            tenant,
            JobRequest::Encrypt {
                message: message(3),
            },
        );
        let stats = server.tenant_stats(tenant).unwrap();
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.completed, 5);
    })
    .unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Property: whatever the capacity, a client that floods one extra
    /// submission gets `QueueFull` with the configured bound echoed
    /// back, and the tenant's outstanding count never exceeds it.
    #[test]
    fn prop_backpressure_bounds_outstanding(capacity in 1usize..6) {
        let rpu = Rpu::builder().lanes(1).build().unwrap();
        let p = params(&rpu);
        let mut config = ServeConfig::new(p);
        config.capacity = capacity;
        serve(&rpu, config, |server| {
            let tenant = server.register_tenant(TenantSpec::new(77)).unwrap();
            server.pause();
            let tickets: Vec<_> = (0..capacity)
                .map(|_| server.submit(tenant, JobRequest::Encrypt { message: message(4) }).unwrap())
                .collect();
            prop_assert_eq!(server.outstanding(tenant).unwrap(), capacity);
            let err = server
                .submit(tenant, JobRequest::Encrypt { message: message(4) })
                .expect_err("over capacity");
            prop_assert_eq!(err, ServeError::QueueFull { tenant, capacity });
            server.resume();
            for t in tickets {
                t.wait().unwrap();
            }
            prop_assert_eq!(server.outstanding(tenant).unwrap(), 0);
        })
        .unwrap();
    }

    /// Property: across weight ratios, a flooding tenant's service
    /// before a light tenant's backlog drains stays within its
    /// weighted share plus batching slack.
    #[test]
    fn prop_no_starvation_beyond_weight(heavy_w in 1u32..4, light_w in 1u32..4) {
        let light_jobs = 8usize;
        let (heavy_before, light_seen) =
            heavy_jobs_before_light_done(heavy_w, light_w, 24, light_jobs);
        prop_assert_eq!(light_seen, light_jobs);
        let share = (light_jobs * heavy_w as usize).div_ceil(light_w as usize);
        let bound = share + 2 * 4; // two batch quanta of slack
        prop_assert!(
            heavy_before <= bound,
            "heavy ({heavy_w}) got {heavy_before} jobs before light ({light_w}) drained; bound {bound}"
        );
    }
}

/// Cross-tenant handles, missing rotation keys, malformed messages, and
/// freed handles all surface as their typed errors.
#[test]
fn tenant_isolation_and_typed_errors() {
    let rpu = Rpu::builder().lanes(2).build().unwrap();
    let p = params(&rpu);
    serve(&rpu, ServeConfig::new(p), |server| {
        let a = server
            .register_tenant(TenantSpec::new(1).rotations(vec![1]))
            .unwrap();
        let b = server.register_tenant(TenantSpec::new(2)).unwrap();
        let ct_a = ct_of(submit_wait(
            server,
            a,
            JobRequest::Encrypt {
                message: message(5),
            },
        ));

        // Tenant B cannot touch A's ciphertexts.
        let err = server
            .submit(b, JobRequest::Mul { x: ct_a, y: ct_a })
            .expect_err("foreign handle rejected");
        assert_eq!(
            err,
            ServeError::ForeignCiphertext {
                tenant: b,
                ct: ct_a
            }
        );

        // No rotation key for 2 steps (only 1 was prepared).
        let err = server
            .submit(a, JobRequest::Rotate { ct: ct_a, steps: 2 })
            .expect_err("missing rotation key");
        assert_eq!(
            err,
            ServeError::NoRotationKey {
                tenant: a,
                steps: 2
            }
        );

        // Malformed requests are typed BadRequest at submission.
        assert!(matches!(
            server.submit(
                a,
                JobRequest::Encrypt {
                    message: vec![1; 3]
                }
            ),
            Err(ServeError::BadRequest(_))
        ));
        assert!(matches!(
            server.submit(
                a,
                JobRequest::Dot {
                    x: ct_a,
                    y: ct_a,
                    len: 0
                }
            ),
            Err(ServeError::BadRequest(_))
        ));

        // Freeing consumes the handle; later use fails through the ticket.
        assert_eq!(
            submit_wait(server, a, JobRequest::Free { ct: ct_a }),
            JobOutput::Freed
        );
        let err = server
            .submit(a, JobRequest::Decrypt { ct: ct_a })
            .unwrap()
            .wait()
            .expect_err("freed handle is gone");
        assert_eq!(err, ServeError::UnknownCiphertext(ct_a));
    })
    .unwrap();
}

/// Rekeying invalidates old-key ciphertexts but keeps the tenant
/// serviceable; teardown deactivates it and releases every device
/// buffer it held — after all tenants are gone the lanes hold zero
/// live buffers.
#[test]
fn rekey_and_teardown_release_device_buffers() {
    let rpu = Rpu::builder().lanes(2).build().unwrap();
    let p = params(&rpu);
    let (_, report) = serve(&rpu, ServeConfig::new(p), |server| {
        let a = server
            .register_tenant(TenantSpec::new(1).rotations(vec![1]))
            .unwrap();
        let b = server.register_tenant(TenantSpec::new(2)).unwrap();

        let msg = message(6);
        let ct = ct_of(submit_wait(
            server,
            a,
            JobRequest::Encrypt {
                message: msg.clone(),
            },
        ));
        assert_eq!(
            plain_of(submit_wait(server, a, JobRequest::Decrypt { ct })),
            msg.iter().map(|m| m % T).collect::<Vec<_>>()
        );

        // Rekey: the old handle is invalidated, fresh traffic works.
        server.wait_all();
        server.rekey(a).unwrap();
        let err = server
            .submit(a, JobRequest::Decrypt { ct })
            .unwrap()
            .wait()
            .expect_err("old-key ciphertext invalidated");
        assert_eq!(err, ServeError::UnknownCiphertext(ct));
        let ct2 = ct_of(submit_wait(
            server,
            a,
            JobRequest::Encrypt {
                message: msg.clone(),
            },
        ));
        assert_eq!(
            plain_of(submit_wait(server, a, JobRequest::Decrypt { ct: ct2 })),
            msg
        );

        // Teardown deactivates the tenant...
        server.teardown(a).unwrap();
        assert!(matches!(
            server.submit(
                a,
                JobRequest::Encrypt {
                    message: msg.clone()
                }
            ),
            Err(ServeError::UnknownTenant(_))
        ));
        assert_eq!(server.tenant_stats(a).unwrap().resident_cts, 0);
        // ...while other tenants keep working, and registration still
        // functions after a teardown.
        submit_wait(
            server,
            b,
            JobRequest::Encrypt {
                message: msg.clone(),
            },
        );
        server.teardown(b).unwrap();
        let c = server.register_tenant(TenantSpec::new(3)).unwrap();
        submit_wait(server, c, JobRequest::Encrypt { message: msg });
        server.teardown(c).unwrap();
    })
    .unwrap();
    assert_eq!(
        report.resident_buffers,
        vec![0; 2],
        "teardown must return every lane to an empty device heap"
    );
}

/// The client-facing handles must be shareable across threads.
#[test]
fn handles_are_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ServerHandle>();
    assert_send_sync::<rpu_serve::JobTicket>();
    assert_send_sync::<CtHandle>();
    assert_send_sync::<ServeError>();
}

/// Steady-state bench mode: with `warmup` set, each client's first
/// completions are tallied separately and excluded from the latency
/// samples; the combined completion count is conserved, so nothing is
/// double-counted or dropped.
#[test]
fn traffic_warmup_ops_are_discarded_from_steady_state() {
    use rpu_serve::{run_traffic, OpMix, ServeConfig, TenantLoad, TrafficSpec};

    let jobs = 12usize;
    let warmup = 5usize;
    let run = |warmup: usize| {
        let rpu = Rpu::builder()
            .lanes(2)
            .device_heap_elements(1 << 20)
            .build()
            .unwrap();
        let spec = TrafficSpec::new(
            11,
            OpMix::transport(),
            vec![TenantLoad::new(jobs), TenantLoad::new(jobs)],
        )
        .warmup(warmup);
        let (report, _) = serve(&rpu, ServeConfig::new(params(&rpu)), |server| {
            run_traffic(server, &spec)
        })
        .unwrap();
        report.unwrap()
    };

    let cold = run(0);
    assert_eq!(cold.warmup_ops, 0);
    assert_eq!(cold.ops, 2 * jobs as u64);

    let steady = run(warmup);
    assert_eq!(steady.warmup_ops, 2 * warmup as u64);
    assert_eq!(
        steady.ops + steady.warmup_ops,
        cold.ops,
        "warmup must move completions out of the steady count, not lose them"
    );
    assert!(steady.p50_us > 0 && steady.p99_us >= steady.p50_us);

    // Warmup beyond the job count clamps: everything is warmup, the
    // steady window is empty but the run still drains cleanly.
    let all_warm = run(jobs * 3);
    assert_eq!(all_warm.ops, 0);
    assert_eq!(all_warm.warmup_ops, 2 * jobs as u64);
    assert_eq!(all_warm.p50_us, 0);
}
