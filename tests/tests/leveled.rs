//! Leveled-ciphertext differential suite: the on-RPU [`LeveledEvaluator`]
//! must agree with the host oracle [`LeveledContext`] — at the *ring
//! element* level, not just after decryption — at every step of a
//! depth-3 multiply chain, on 1, 2, and 4 lanes. Both paths draw the
//! same pinned randomness streams, so every tower of every intermediate
//! ciphertext is comparable bit-for-bit.
//!
//! The property block validates the [`NoiseBudget`] tracker on the host
//! oracle across random depth-1..3 circuits: the conservative estimate
//! must dominate the measured phase magnitude after every operation,
//! and decryption must succeed whenever the tracker still predicts
//! budget.

use proptest::prelude::*;
use rpu::ntt::rlwe::Splitmix;
use rpu::ntt::testutil::schoolbook_negacyclic;
use rpu::{
    CodegenStyle, DeviceLeveledCiphertext, LeveledCiphertext, LeveledContext, LeveledEvaluator,
    Rpu, RpuError,
};

const T: u128 = 65537;
/// Chain prime width for the device suite (4 towers ≈ a 236-bit `Q`).
const BITS: u32 = 59;
/// Gadget base for the device suite: 2 digits per 59-bit prime keeps
/// the dispatch count (and debug-mode runtime) manageable while the
/// noise analysis still clears depth 3 comfortably.
const BASE_LOG: u32 = 32;

fn message(n: usize, seed: u128) -> Vec<u128> {
    (0..n as u128).map(|i| (i * 13 + seed) % 256).collect()
}

/// Downloads the device ciphertext and asserts every tower of both
/// components equals the host ciphertext's ring elements.
fn assert_same_ring_elements(
    eval: &mut LeveledEvaluator<'_>,
    dev: &DeviceLeveledCiphertext,
    host: &LeveledCiphertext,
    what: &str,
) {
    assert_eq!(dev.level(), host.level(), "{what}: level");
    let downloaded = eval.download_ciphertext(dev).unwrap();
    for l in 0..=host.level() {
        assert_eq!(
            downloaded.a_towers()[l].values(),
            host.a_towers()[l].values(),
            "{what}: mask tower {l}"
        );
        assert_eq!(
            downloaded.b_towers()[l].values(),
            host.b_towers()[l].values(),
            "{what}: payload tower {l}"
        );
    }
}

/// The acceptance pipeline at one lane count: a fresh → mul → rescale
/// ×3 chain over a 4-prime chain, compared tower-by-tower against the
/// host oracle after every multiply and every rescale, then decrypted
/// on both paths against the schoolbook product.
fn depth_3_chain_is_bit_exact(lanes: usize) {
    let n = rpu::smoke_cap(1024);
    let rpu = Rpu::builder().lanes(lanes).build().unwrap();
    let ctx = LeveledContext::generate(n, T, BITS, 4).unwrap();
    let host = LeveledContext::generate(n, T, BITS, 4).unwrap();
    let mut eval = LeveledEvaluator::new(&rpu, ctx, CodegenStyle::Optimized).unwrap();
    eval.set_key_base_log(BASE_LOG).unwrap();

    let mut dev_rng = Splitmix::new(0x1E7E1ED);
    let mut host_rng = Splitmix::new(0x1E7E1ED);
    let host_sk = host.keygen(&mut host_rng);
    eval.keygen(&mut dev_rng).unwrap();
    let host_rk = host.relin_keygen(&host_sk, &mut host_rng, BASE_LOG);
    eval.relin_keygen(&mut dev_rng).unwrap();

    let msgs: Vec<Vec<u128>> = (0..4).map(|s| message(n, s as u128)).collect();
    let tm = rpu::arith::Modulus128::new(T).unwrap();
    let mut expect = msgs[0].clone();
    for m in &msgs[1..] {
        expect = schoolbook_negacyclic(tm, &expect, m);
    }

    let dev_cts: Vec<DeviceLeveledCiphertext> = msgs
        .iter()
        .map(|m| eval.encrypt(m, &mut dev_rng).unwrap())
        .collect();
    let host_cts: Vec<LeveledCiphertext> = msgs
        .iter()
        .map(|m| host.encrypt(&host_sk, m, &mut host_rng))
        .collect();
    assert_same_ring_elements(&mut eval, &dev_cts[0], &host_cts[0], "fresh encryption");

    let mut dev_acc = dev_cts[0].clone();
    let mut host_acc = host_cts[0].clone();
    for depth in 1..=3 {
        let dev_prod = eval.mul(&dev_acc, &dev_cts[depth]).unwrap();
        let host_prod = host.mul(&host_rk, &host_acc, &host_cts[depth]);
        assert_same_ring_elements(&mut eval, &dev_prod, &host_prod, "product");
        let dev_next = eval.rescale(&dev_prod).unwrap();
        let host_next = host.rescale(&host_prod).unwrap();
        assert_same_ring_elements(&mut eval, &dev_next, &host_next, "rescaled product");
        // the device tracker composes the same model as the host's
        assert!((dev_next.noise().bits() - host_next.noise().bits()).abs() < 1e-9);
        // and the measured phase magnitude stays under the bound
        let measured = eval.measure_noise(&dev_next).unwrap();
        assert!(measured <= dev_next.noise().bits(), "depth {depth}");
        eval.free_ciphertext(dev_prod).unwrap();
        if depth > 1 {
            eval.free_ciphertext(dev_acc).unwrap();
        }
        dev_acc = dev_next;
        host_acc = host_next;
    }

    assert_eq!(dev_acc.level(), 0, "3 rescales drop a 4-prime chain to 0");
    assert!(
        eval.remaining_bits(&dev_acc) > 0.0,
        "tracker must still predict success at depth 3"
    );
    assert_eq!(eval.decrypt(&dev_acc).unwrap(), expect, "lanes={lanes}");
    assert_eq!(host.decrypt(&host_sk, &host_acc), expect);
}

#[test]
fn depth_3_chain_is_bit_exact_on_one_lane() {
    depth_3_chain_is_bit_exact(1);
}

#[test]
fn depth_3_chain_is_bit_exact_on_two_lanes() {
    depth_3_chain_is_bit_exact(2);
}

#[test]
fn depth_3_chain_is_bit_exact_on_four_lanes() {
    depth_3_chain_is_bit_exact(4);
}

#[test]
fn add_sub_and_mod_drop_align_levels_on_device() {
    let n = rpu::smoke_cap(1024);
    let rpu = Rpu::builder().lanes(2).build().unwrap();
    let ctx = LeveledContext::generate(n, T, BITS, 3).unwrap();
    let mut eval = LeveledEvaluator::new(&rpu, ctx, CodegenStyle::Optimized).unwrap();
    let mut rng = Splitmix::new(77);
    eval.keygen(&mut rng).unwrap();

    let m1 = message(n, 5);
    let m2 = message(n, 9);
    let x = eval.encrypt(&m1, &mut rng).unwrap();
    let y = eval.encrypt(&m2, &mut rng).unwrap();
    let y = eval.mod_drop(y, 1).unwrap();
    assert_eq!(y.level(), 1);

    // add auto-aligns to the shallower operand
    let sum = eval.add(&x, &y).unwrap();
    assert_eq!(sum.level(), 1);
    let expect: Vec<u128> = m1.iter().zip(&m2).map(|(&a, &b)| (a + b) % T).collect();
    assert_eq!(eval.decrypt(&sum).unwrap(), expect);

    let diff = eval.sub(&x, &y).unwrap();
    let expect: Vec<u128> = m1
        .iter()
        .zip(&m2)
        .map(|(&a, &b)| (a + T - b % T) % T)
        .collect();
    assert_eq!(eval.decrypt(&diff).unwrap(), expect);

    // mod-drop past the ciphertext's level is refused (and the
    // ciphertext consumed either way)
    assert!(matches!(eval.mod_drop(sum, 3), Err(RpuError::Leveled(_))));
    for ct in [x, y, diff] {
        eval.free_ciphertext(ct).unwrap();
    }
}

#[test]
fn rescale_is_refused_at_the_bottom_of_the_chain() {
    let n = rpu::smoke_cap(1024);
    let rpu = Rpu::builder().build().unwrap();
    let ctx = LeveledContext::generate(n, T, BITS, 2).unwrap();
    let mut eval = LeveledEvaluator::new(&rpu, ctx, CodegenStyle::Optimized).unwrap();
    let mut rng = Splitmix::new(3);
    eval.keygen(&mut rng).unwrap();
    let m = message(n, 1);
    let ct = eval.encrypt(&m, &mut rng).unwrap();
    let floor = eval.rescale(&ct).unwrap();
    assert_eq!(floor.level(), 0);
    assert_eq!(eval.decrypt(&floor).unwrap(), m, "rescale preserves m");
    assert!(matches!(eval.rescale(&floor), Err(RpuError::Leveled(_))));
    // operations without a relin key are refused with a Config error
    assert!(matches!(eval.mul(&ct, &ct), Err(RpuError::Config(_))));
}

// ---------------------------------------------------------------------
// Satellite: noise-budget tracker properties on the host oracle
// ---------------------------------------------------------------------

/// One random homomorphic op for the tracker property: multiply by a
/// fresh ciphertext (with or without the following rescale), or
/// add/subtract a fresh ciphertext.
#[derive(Debug, Clone, Copy)]
enum CircuitOp {
    MulRescale,
    Mul,
    Add,
    Sub,
}

fn op_strategy() -> impl Strategy<Value = CircuitOp> {
    prop_oneof![
        Just(CircuitOp::MulRescale),
        Just(CircuitOp::Mul),
        Just(CircuitOp::Add),
        Just(CircuitOp::Sub),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Across random depth-1..3 circuits: (1) the tracker's estimate
    /// dominates the measured phase magnitude after every operation,
    /// and (2) decryption is correct whenever the tracker still
    /// predicts remaining budget — i.e. decryption fails only when the
    /// tracker predicted exhaustion first.
    #[test]
    fn noise_tracker_is_conservative_and_predictive(
        ops in prop::collection::vec(op_strategy(), 1..4),
        seed in any::<u64>(),
    ) {
        let n = 64usize;
        let ctx = LeveledContext::generate(n, T, 50, 3).unwrap();
        let mut rng = Splitmix::new(seed);
        let sk = ctx.keygen(&mut rng);
        let rk = ctx.relin_keygen(&sk, &mut rng, 16);
        let tm = rpu::arith::Modulus128::new(T).unwrap();

        let m0: Vec<u128> = (0..n as u128).map(|i| (i * 7 + 1) % 64).collect();
        let mut expect = m0.clone();
        let mut ct = ctx.encrypt(&sk, &m0, &mut rng);
        prop_assert!(ctx.measure_noise(&sk, &ct) <= ct.noise().bits());

        for (step, op) in ops.into_iter().enumerate() {
            let mf: Vec<u128> =
                (0..n as u128).map(|i| (i * 3 + step as u128 + 2) % 64).collect();
            let fresh = ctx.encrypt(&sk, &mf, &mut rng);
            ct = match op {
                CircuitOp::MulRescale => {
                    let p = ctx.mul(&rk, &ct, &fresh);
                    expect = schoolbook_negacyclic(tm, &expect, &mf);
                    if p.level() > 0 { ctx.rescale(&p).unwrap() } else { p }
                }
                CircuitOp::Mul => {
                    expect = schoolbook_negacyclic(tm, &expect, &mf);
                    ctx.mul(&rk, &ct, &fresh)
                }
                CircuitOp::Add => {
                    expect = expect.iter().zip(&mf).map(|(&a, &b)| (a + b) % T).collect();
                    ctx.add(&ct, &fresh)
                }
                CircuitOp::Sub => {
                    expect = expect
                        .iter()
                        .zip(&mf)
                        .map(|(&a, &b)| (a + T - b) % T)
                        .collect();
                    ctx.sub(&ct, &fresh)
                }
            };
            // (1) conservative: measured never exceeds the estimate
            prop_assert!(
                ctx.measure_noise(&sk, &ct) <= ct.noise().bits(),
                "step {step}: measured noise above the tracked bound"
            );
            // (2) predictive: while the tracker sees budget, decryption
            // must be exact
            let log2_q = ctx.chain().log2_q(ct.level());
            if !ct.noise().is_exhausted(log2_q) {
                prop_assert_eq!(
                    ctx.decrypt(&sk, &ct),
                    expect.clone(),
                    "step {}: tracker predicted budget but decryption failed",
                    step
                );
            }
        }
    }
}
