//! Snapshot/restore integration suite: `SNAP_V1` round trips (byte
//! determinism, re-snapshot equality, random heap layouts), bit-exact
//! dispatch after restore into a fresh instance, mid-pipeline restore
//! equivalence for leveled multiply chains at 1/2/4 lanes, typed
//! negative paths (truncation, bad magic, future versions, kind
//! mismatch), and the live-buffer double-free pin: restore refuses
//! while handles are live, and `restore_replacing` makes post-snapshot
//! handles stale instead of dangling.

use proptest::prelude::*;
use rpu::ntt::rlwe::Splitmix;
use rpu::{
    CodegenStyle, DeviceLeveledCiphertext, ElementwiseOp, ElementwiseSpec, EngineKind,
    LeveledContext, LeveledEvaluator, RingTraceSink, Rpu, RpuError, SnapshotError,
};
use std::sync::Arc;

const T: u128 = 65537;
/// Chain prime width for the leveled restore suite (matches the
/// leveled differential suite so noise analysis clears depth 3).
const BITS: u32 = 59;
/// Gadget base: 2 digits per 59-bit prime keeps dispatch counts low.
const BASE_LOG: u32 = 32;

fn test_data(len: usize, seed: u64) -> Vec<u128> {
    (0..len as u128)
        .map(|i| {
            i.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(seed as u128)
        })
        .collect()
}

fn message(n: usize, seed: u128) -> Vec<u128> {
    (0..n as u128).map(|i| (i * 13 + seed) % 256).collect()
}

/// Unwraps an [`RpuError`] down to its snapshot cause.
fn snap_err(e: RpuError) -> SnapshotError {
    match e {
        RpuError::Snapshot(s) => s,
        other => panic!("expected a snapshot error, got {other}"),
    }
}

// ---------------------------------------------------------------------
// Session round trips
// ---------------------------------------------------------------------

/// Snapshotting is a pure read: taking a snapshot twice yields
/// identical bytes, and restoring those bytes into a fresh instance
/// yields a session whose own snapshot is byte-identical (the format
/// is canonical — no map-iteration nondeterminism leaks in).
#[test]
fn snapshots_are_deterministic_and_restore_is_exact() {
    let rpu = Rpu::builder().build().unwrap();
    let mut s = rpu.session();
    let a = test_data(700, 1);
    let b = test_data(300, 2);
    let ba = s.upload(&a).unwrap();
    let bb = s.upload(&b).unwrap();
    s.free(bb).unwrap(); // leave a hole so the free list is non-trivial
    let bytes = s.snapshot();
    assert_eq!(bytes, s.snapshot(), "snapshot must be a pure read");

    let rpu2 = Rpu::builder().build().unwrap();
    let mut s2 = rpu2.session();
    let restored = s2.restore(&bytes).unwrap();
    assert_eq!(s2.snapshot(), bytes, "re-snapshot equality");
    assert_eq!(restored.len(), 1);
    // Both the returned handle and the original one resolve to the
    // snapshotted contents.
    assert_eq!(s2.download(&restored[0]).unwrap(), a);
    assert_eq!(s2.download(&ba).unwrap(), a);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random heap layouts (mixed sizes, random frees leaving holes)
    /// survive a snapshot → restore → re-snapshot round trip with
    /// byte-identical snapshots, identical live-buffer handles, and
    /// bit-identical buffer contents in a fresh instance.
    #[test]
    fn random_heaps_round_trip_through_snapshots(
        lens in prop::collection::vec(1usize..1500, 1..8),
        drop_mask in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let rpu = Rpu::builder().build().unwrap();
        let mut s = rpu.session();
        let data: Vec<Vec<u128>> = lens
            .iter()
            .enumerate()
            .map(|(i, &l)| test_data(l, seed ^ i as u64))
            .collect();
        let bufs: Vec<_> = data.iter().map(|d| s.upload(d).unwrap()).collect();
        let mut kept = Vec::new();
        for (i, buf) in bufs.into_iter().enumerate() {
            if drop_mask >> (i % 64) & 1 == 1 {
                s.free(buf).unwrap();
            } else {
                kept.push((buf, &data[i]));
            }
        }
        let bytes = s.snapshot();

        let rpu2 = Rpu::builder().build().unwrap();
        let mut s2 = rpu2.session();
        let restored = s2.restore(&bytes).unwrap();
        prop_assert_eq!(s2.snapshot(), bytes, "re-snapshot equality");
        let kept_handles: Vec<_> = kept.iter().map(|&(b, _)| b).collect();
        prop_assert_eq!(restored, kept_handles, "same ids, offsets, lengths");
        for (buf, expect) in &kept {
            prop_assert_eq!(&s2.download(buf).unwrap(), *expect);
        }
    }
}

/// A dispatch replayed after restoring into a fresh instance is
/// bit-exact with the original session's continuation, and the
/// regenerated kernel cache answers the compile without a miss. The
/// dispatch traces on both sides must also report the *same* arithmetic
/// engine: the engine is derived from the kernel key, so a restored
/// session re-pins it deterministically.
#[test]
fn dispatch_after_restore_is_bit_exact() {
    let n = rpu::smoke_cap(1024);
    let style = CodegenStyle::Optimized;
    let sink = Arc::new(RingTraceSink::default());
    let rpu = Rpu::builder().trace(sink.clone()).build().unwrap();
    let mut s = rpu.session();
    let q = s.primes_for(n).unwrap();
    let spec = ElementwiseSpec::new(ElementwiseOp::MulMod, n, q, style);
    let kernel = s.compile(&spec).unwrap();
    let a: Vec<u128> = (0..n as u128).map(|i| (i * 31 + 7) % q).collect();
    let b: Vec<u128> = (0..n as u128).map(|i| (i * 57 + 3) % q).collect();
    let ba = s.upload(&a).unwrap();
    let bb = s.upload(&b).unwrap();
    let out = s.alloc(kernel.output_range().1).unwrap();
    s.dispatch(&kernel, &[ba, bb], &[out]).unwrap();
    let bytes = s.snapshot();
    let pre_snapshot_engines: Vec<EngineKind> = sink.events().iter().map(|e| e.engine).collect();
    assert!(!pre_snapshot_engines.is_empty());
    assert!(
        pre_snapshot_engines
            .iter()
            .all(|&e| e == EngineKind::for_modulus(q)),
        "traced engine must follow the kernel's modulus width"
    );

    // Continue on the original: a second, different dispatch.
    s.dispatch(&kernel, &[out, bb], &[out]).unwrap();
    let continued = s.download(&out).unwrap();

    // Restore elsewhere and replay the same continuation.
    let sink2 = Arc::new(RingTraceSink::default());
    let rpu2 = Rpu::builder().trace(sink2.clone()).build().unwrap();
    let mut s2 = rpu2.session();
    s2.restore(&bytes).unwrap();
    let kernel2 = s2.compile(&spec).unwrap();
    assert_eq!(
        s2.cache_stats().misses,
        0,
        "restore must re-pin the kernel cache, not regenerate on use"
    );
    s2.dispatch(&kernel2, &[out, bb], &[out]).unwrap();
    assert_eq!(s2.download(&out).unwrap(), continued, "bit-exact replay");
    let post_restore = sink2.events();
    assert!(!post_restore.is_empty());
    for event in &post_restore {
        assert_eq!(
            event.engine, pre_snapshot_engines[0],
            "post-restore dispatches must report the same engine as pre-snapshot"
        );
    }
}

// ---------------------------------------------------------------------
// Mid-pipeline leveled restore equivalence
// ---------------------------------------------------------------------

/// Downloads every tower of both ciphertext components for bit-exact
/// comparison.
fn towers(
    eval: &mut LeveledEvaluator<'_>,
    ct: &DeviceLeveledCiphertext,
) -> Vec<(Vec<u128>, Vec<u128>)> {
    let host = eval.download_ciphertext(ct).unwrap();
    (0..=host.level())
        .map(|l| {
            (
                host.a_towers()[l].values().to_vec(),
                host.b_towers()[l].values().to_vec(),
            )
        })
        .collect()
}

/// A depth-`depth` multiply-rescale chain, snapshotted after the first
/// level: continuing from the live state and continuing from the
/// restored snapshot must produce identical final ciphertext towers
/// (and decryptions), because nothing after encryption draws host
/// randomness.
fn mid_pipeline_restore_matches(lanes: usize, depth: usize) {
    let n = rpu::smoke_cap(1024);
    let rpu = Rpu::builder().lanes(lanes).build().unwrap();
    let ctx = LeveledContext::generate(n, T, BITS, depth + 1).unwrap();
    let mut eval = LeveledEvaluator::new(&rpu, ctx, CodegenStyle::Optimized).unwrap();
    eval.set_key_base_log(BASE_LOG).unwrap();
    let mut rng = Splitmix::new(0x005E_ED0F_5EED);
    eval.keygen(&mut rng).unwrap();
    eval.relin_keygen(&mut rng).unwrap();
    let msgs: Vec<Vec<u128>> = (0..=depth).map(|s| message(n, s as u128)).collect();
    let cts: Vec<DeviceLeveledCiphertext> = msgs
        .iter()
        .map(|m| eval.encrypt(m, &mut rng).unwrap())
        .collect();

    // Level 1 runs before the snapshot; the rest is the continuation.
    let prod = eval.mul(&cts[0], &cts[1]).unwrap();
    let acc = eval.rescale(&prod).unwrap();
    let bytes = eval.snapshot();

    // Continuation A: straight through on the live state.
    let mut acc_a = acc.clone();
    for ct in cts.iter().take(depth + 1).skip(2) {
        let p = eval.mul(&acc_a, ct).unwrap();
        acc_a = eval.rescale(&p).unwrap();
    }
    let towers_a = towers(&mut eval, &acc_a);
    let plain_a = eval.decrypt(&acc_a).unwrap();

    // Continuation B: rewind the device to the snapshot and replay.
    // Host-side handles from snapshot time (`acc`, `cts`) stay valid;
    // everything allocated after it (`acc_a`'s buffers) goes stale.
    eval.restore(&bytes).unwrap();
    let mut acc_b = acc;
    for ct in cts.iter().take(depth + 1).skip(2) {
        let p = eval.mul(&acc_b, ct).unwrap();
        acc_b = eval.rescale(&p).unwrap();
    }
    let towers_b = towers(&mut eval, &acc_b);
    let plain_b = eval.decrypt(&acc_b).unwrap();

    assert_eq!(
        towers_a, towers_b,
        "lanes={lanes} depth={depth}: restored continuation must reproduce every tower"
    );
    assert_eq!(plain_a, plain_b, "lanes={lanes} depth={depth}: decryption");
}

#[test]
fn depth_2_chain_restores_mid_pipeline_on_one_lane() {
    mid_pipeline_restore_matches(1, 2);
}

#[test]
fn depth_2_chain_restores_mid_pipeline_on_two_lanes() {
    mid_pipeline_restore_matches(2, 2);
}

#[test]
fn depth_2_chain_restores_mid_pipeline_on_four_lanes() {
    mid_pipeline_restore_matches(4, 2);
}

#[test]
fn depth_3_chain_restores_mid_pipeline_on_one_lane() {
    mid_pipeline_restore_matches(1, 3);
}

#[test]
fn depth_3_chain_restores_mid_pipeline_on_two_lanes() {
    mid_pipeline_restore_matches(2, 3);
}

#[test]
fn depth_3_chain_restores_mid_pipeline_on_four_lanes() {
    mid_pipeline_restore_matches(4, 3);
}

// ---------------------------------------------------------------------
// Negative paths: every bad input is a typed error, never a panic
// ---------------------------------------------------------------------

/// Truncations at every prefix length, a corrupted magic, a trailing
/// byte, and a future format version all fail with typed
/// [`SnapshotError`]s and leave the target session untouched.
#[test]
fn corrupt_snapshots_fail_typed_and_leave_the_session_unchanged() {
    let rpu = Rpu::builder().build().unwrap();
    let mut s = rpu.session();
    let buf = s.upload(&test_data(200, 9)).unwrap();
    let bytes = s.snapshot();

    let rpu2 = Rpu::builder().build().unwrap();
    let mut s2 = rpu2.session();
    let pristine = s2.snapshot();

    // Bad magic.
    let mut bad = bytes.clone();
    bad[0] = b'X';
    assert_eq!(
        snap_err(s2.restore(&bad).unwrap_err()),
        SnapshotError::BadMagic
    );

    // Future version: header declares VERSION + 1.
    let mut future = bytes.clone();
    future[4] = future[4].wrapping_add(1);
    assert!(matches!(
        snap_err(s2.restore(&future).unwrap_err()),
        SnapshotError::UnsupportedVersion { found, supported } if found == supported + 1
    ));

    // Every truncation of the valid bytes fails (Truncated or Corrupt
    // depending on where the cut lands) without panicking. Step past
    // single bytes to keep the sweep fast on big images.
    for cut in (0..bytes.len()).step_by(97).chain([bytes.len() - 1]) {
        match snap_err(s2.restore(&bytes[..cut]).unwrap_err()) {
            SnapshotError::BadMagic
            | SnapshotError::Truncated { .. }
            | SnapshotError::Corrupt(_) => {}
            other => panic!("truncation at {cut} gave {other}"),
        }
    }

    // A trailing byte is corruption, not slack.
    let mut trailing = bytes.clone();
    trailing.push(0);
    assert!(matches!(
        snap_err(s2.restore(&trailing).unwrap_err()),
        SnapshotError::Corrupt(_)
    ));

    // A cluster restore refuses session-kind bytes (and vice versa).
    let mut cluster2 = rpu2.cluster_with(1);
    assert!(matches!(
        snap_err(cluster2.restore_all(&bytes).unwrap_err()),
        SnapshotError::Corrupt(_)
    ));
    let cluster_bytes = cluster2.snapshot_all();
    assert!(matches!(
        snap_err(s2.restore(&cluster_bytes).unwrap_err()),
        SnapshotError::Corrupt(_)
    ));

    // None of the failures mutated the target session.
    assert_eq!(s2.snapshot(), pristine, "failed restores must not mutate");

    // The source session is also intact.
    assert_eq!(s.download(&buf).unwrap(), test_data(200, 9));
}

/// Restoring into a session whose device geometry differs (here: a
/// different heap size) is refused with the typed mismatch, naming
/// both sides.
#[test]
fn geometry_mismatch_is_typed() {
    let rpu = Rpu::builder().build().unwrap();
    let bytes = rpu.session().snapshot();
    let small = Rpu::builder()
        .device_heap_elements(1 << 12)
        .build()
        .unwrap();
    match snap_err(small.session().restore(&bytes).unwrap_err()) {
        SnapshotError::GeometryMismatch {
            what,
            snapshot,
            target,
        } => {
            assert!(snapshot != target, "{what}: sides must differ");
        }
        other => panic!("expected a geometry mismatch, got {other}"),
    }
}

// ---------------------------------------------------------------------
// Live-buffer safety: the double-free pin
// ---------------------------------------------------------------------

/// `restore` refuses to run under live buffers with the typed error;
/// after freeing, the same bytes restore fine. `restore_replacing`
/// swaps the state atomically: handles allocated after the snapshot go
/// stale (download *and* free are typed errors — never a double free),
/// while snapshot-time handles keep resolving.
#[test]
fn restore_under_live_buffers_refuses_then_replacing_staleness_pins_double_free() {
    let rpu = Rpu::builder().build().unwrap();
    let mut s = rpu.session();
    let keep = s.upload(&test_data(500, 4)).unwrap();
    let bytes = s.snapshot();

    // A handle allocated after the snapshot blocks the safe restore.
    let late = s.upload(&test_data(64, 5)).unwrap();
    assert_eq!(
        snap_err(s.restore(&bytes).unwrap_err()),
        SnapshotError::LiveBuffers { live: 2 }
    );
    // ... and the session still works (nothing was mutated).
    assert_eq!(s.download(&late).unwrap(), test_data(64, 5));

    // The replacing restore succeeds under live handles.
    let restored = s.restore_replacing(&bytes).unwrap();
    assert_eq!(restored, vec![keep]);
    // The post-snapshot handle is stale: use is a typed error, and
    // freeing it is *also* a typed error rather than a double free
    // corrupting the restored heap map.
    assert!(matches!(s.download(&late), Err(RpuError::Buffer(_))));
    assert!(matches!(s.free(late), Err(RpuError::Buffer(_))));
    // The snapshot-time handle still resolves, exactly once.
    assert_eq!(s.download(&keep).unwrap(), test_data(500, 4));
    s.free(keep).unwrap();
    assert!(matches!(s.free(keep), Err(RpuError::Buffer(_))));
    assert_eq!(s.device_mem_in_use(), 0);

    // Freeing the survivors first makes the safe restore legal.
    let again = s.restore(&bytes).unwrap();
    assert_eq!(again.len(), 1);
    assert_eq!(s.download(&again[0]).unwrap(), test_data(500, 4));
}

/// Buffer ids are never recycled across a restore: a fresh allocation
/// after restoring gets an id the snapshot has never seen, so a
/// pre-restore handle can never alias it.
#[test]
fn restore_never_recycles_buffer_ids() {
    let rpu = Rpu::builder().build().unwrap();
    let mut s = rpu.session();
    let old = s.upload(&test_data(100, 6)).unwrap();
    let bytes = s.snapshot();
    let late = s.upload(&test_data(100, 7)).unwrap();
    s.restore_replacing(&bytes).unwrap();
    let fresh = s.upload(&test_data(100, 8)).unwrap();
    assert_ne!(fresh, late, "fresh ids must not revive stale handles");
    assert!(matches!(s.download(&late), Err(RpuError::Buffer(_))));
    assert_eq!(s.download(&old).unwrap(), test_data(100, 6));
    assert_eq!(s.download(&fresh).unwrap(), test_data(100, 8));
}

// ---------------------------------------------------------------------
// Cluster snapshots
// ---------------------------------------------------------------------

/// A cluster snapshot restores every lane and the ownership map into a
/// fresh cluster: handles resolve on their original lanes through the
/// cluster-level API, and a second snapshot is byte-identical.
#[test]
fn cluster_snapshot_restores_lanes_and_ownership() {
    let rpu = Rpu::builder().lanes(2).build().unwrap();
    let mut cluster = rpu.cluster();
    let d0 = test_data(300, 10);
    let d1 = test_data(400, 11);
    let b0 = cluster.upload_to(0, &d0).unwrap();
    let b1 = cluster.upload_to(1, &d1).unwrap();
    let bytes = cluster.snapshot_all();

    let rpu2 = Rpu::builder().lanes(2).build().unwrap();
    let mut cluster2 = rpu2.cluster();
    cluster2.restore_all(&bytes).unwrap();
    assert_eq!(cluster2.snapshot_all(), bytes, "re-snapshot equality");
    // The ownership map came back: cluster-level download locates each
    // buffer on its lane.
    assert_eq!(cluster2.download(&b0).unwrap(), d0);
    assert_eq!(cluster2.download(&b1).unwrap(), d1);
    assert_eq!(cluster2.locate(&b0), Some(0));
    assert_eq!(cluster2.locate(&b1), Some(1));
    cluster2.free(b0).unwrap();
    cluster2.free(b1).unwrap();
}

/// Restoring a 2-lane snapshot into a 3-lane cluster is the typed lane
/// mismatch; restoring under live buffers is the typed refusal.
#[test]
fn cluster_restore_mismatches_are_typed() {
    let rpu = Rpu::builder().lanes(2).build().unwrap();
    let mut cluster = rpu.cluster();
    let bytes = cluster.snapshot_all();

    let rpu3 = Rpu::builder().lanes(3).build().unwrap();
    let mut cluster3 = rpu3.cluster();
    assert_eq!(
        snap_err(cluster3.restore_all(&bytes).unwrap_err()),
        SnapshotError::LaneCountMismatch {
            snapshot: 2,
            cluster: 3
        }
    );

    let live = cluster.upload_to(0, &test_data(50, 12)).unwrap();
    assert_eq!(
        snap_err(cluster.restore_all(&bytes).unwrap_err()),
        SnapshotError::LiveBuffers { live: 1 }
    );
    cluster.free(live).unwrap();
    cluster.restore_all(&bytes).unwrap();
}
