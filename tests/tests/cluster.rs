//! Multi-lane cluster semantics: lane isolation (a buffer belongs to
//! exactly one lane), work-stealing distribution, aggregated reports,
//! and the negative paths that keep handle misuse an error instead of
//! heap corruption.

use rpu::arith::find_ntt_prime_chain;
use rpu::{
    BufferError, CodegenStyle, ElementwiseOp, ElementwiseSpec, LaneJob, LaneWorker, RnsExecutor,
    Rpu, RpuError,
};

fn mul_spec(n: usize, q: u128) -> ElementwiseSpec {
    ElementwiseSpec::new(ElementwiseOp::MulMod, n, q, CodegenStyle::Optimized)
}

#[test]
fn builder_lane_count_flows_into_cluster() {
    let rpu = Rpu::builder().lanes(4).build().unwrap();
    assert_eq!(rpu.lanes(), 4);
    assert_eq!(rpu.cluster().lane_count(), 4);
    assert_eq!(rpu.cluster_with(2).lane_count(), 2);
    // default stays single-lane
    assert_eq!(Rpu::builder().build().unwrap().cluster().lane_count(), 1);
    // out-of-range counts are rejected at build
    assert!(matches!(
        Rpu::builder().lanes(0).build(),
        Err(RpuError::Config(_))
    ));
    assert!(matches!(
        Rpu::builder().lanes(65).build(),
        Err(RpuError::Config(_))
    ));
}

#[test]
fn cross_lane_handles_error_not_corrupt() {
    let n = 1024usize;
    let rpu = Rpu::builder().lanes(2).build().unwrap();
    let mut c = rpu.cluster();
    let q = c.primes_for(n).unwrap();
    let kernel = c.compile_on(1, &mul_spec(n, q)).unwrap();

    let x0 = c.upload_to(0, &vec![3u128; n]).unwrap(); // lane 0
    let x1 = c.upload_to(1, &vec![5u128; n]).unwrap(); // lane 1
    let y1 = c.alloc_on(1, n).unwrap();

    // A lane-0 input buffer on a lane-1 dispatch must error…
    let err = c.dispatch_on(1, &kernel, &[x0, x1], &[y1]).unwrap_err();
    assert!(
        matches!(
            err,
            RpuError::Buffer(BufferError::ForeignLane {
                owner: 0,
                used_on: 1,
                ..
            })
        ),
        "got {err}"
    );
    // …as must a foreign output buffer.
    let y0 = c.alloc_on(0, n).unwrap();
    assert!(matches!(
        c.dispatch_on(1, &kernel, &[x1, x1], &[y0]),
        Err(RpuError::Buffer(BufferError::ForeignLane { .. }))
    ));
    // Lane 1's data was never touched by the failed dispatches.
    assert_eq!(c.download(&x1).unwrap(), vec![5u128; n]);
    // The same handles dispatched on their own lane still work.
    let report = c.dispatch_on(1, &kernel, &[x1, x1], &[y1]).unwrap();
    assert!(report.verified);
    assert_eq!(c.download(&y1).unwrap(), vec![25u128; n]);

    // Raw lane sessions enforce the same isolation (globally-unique
    // handle ids): lane 1's session has never heard of a lane-0 buffer.
    assert!(matches!(
        c.lane_session(1).download(&x0),
        Err(RpuError::Buffer(BufferError::StaleHandle { .. }))
    ));
}

#[test]
fn failed_migrate_leaks_nothing() {
    // Regression (negative path): when the destination lane's heap
    // cannot take the buffer, `migrate` must leave the source live,
    // downloadable, and still tracked in the placement map — no leaked
    // source, no stranded placement entry, no phantom destination
    // allocation.
    let rpu = Rpu::builder()
        .device_heap_elements(4096)
        .lanes(2)
        .build()
        .unwrap();
    let mut c = rpu.cluster();
    let data: Vec<u128> = (0..1024).collect();
    let src = c.upload_to(0, &data).unwrap();
    // Exhaust lane 1 completely.
    let hog = c.upload_to(1, &vec![7u128; 4096]).unwrap();
    let err = c.migrate(src, 1).unwrap_err();
    assert!(
        matches!(err, RpuError::Buffer(BufferError::OutOfMemory { .. })),
        "got {err}"
    );
    // Source untouched: still on lane 0, still downloadable, still live.
    assert_eq!(c.locate(&src), Some(0));
    assert_eq!(c.download(&src).unwrap(), data);
    assert_eq!(c.lane_session(0).device_mem_in_use(), 1024);
    assert_eq!(c.lane_session(0).live_buffers(), 1);
    // Destination unchanged: the failed move allocated nothing lasting.
    assert_eq!(c.lane_session(1).device_mem_in_use(), 4096);
    assert_eq!(c.lane_session(1).live_buffers(), 1);
    // Freeing space on the destination lets the same migrate succeed.
    c.free(hog).unwrap();
    let moved = c.migrate(src, 1).unwrap();
    assert_eq!(c.locate(&moved), Some(1));
    assert_eq!(c.download(&moved).unwrap(), data);
    assert_eq!(c.lane_session(0).device_mem_in_use(), 0);
}

#[test]
fn replicate_copies_without_consuming_the_source() {
    let rpu = Rpu::builder().lanes(2).build().unwrap();
    let mut c = rpu.cluster();
    let data: Vec<u128> = (0..256).collect();
    let src = c.upload_to(0, &data).unwrap();
    let copy = c.replicate(&src, 1).unwrap();
    assert_eq!(c.locate(&src), Some(0));
    assert_eq!(c.locate(&copy), Some(1));
    assert_eq!(c.download(&src).unwrap(), data);
    assert_eq!(c.download(&copy).unwrap(), data);
    // same-lane replication is an independent copy, not an alias
    let twin = c.replicate(&src, 0).unwrap();
    assert_ne!(twin.id(), src.id());
    c.free(src).unwrap();
    assert_eq!(c.download(&twin).unwrap(), data);
}

#[test]
fn panicking_job_surfaces_as_error_not_hang() {
    // Regression: a lane worker panicking mid-job must not poison the
    // queue state or wedge the remaining lanes — the run returns
    // RpuError::LanePanic, later jobs are abandoned, and the cluster
    // stays usable for the next run.
    let rpu = Rpu::builder().lanes(2).build().unwrap();
    let mut c = rpu.cluster();
    // NOTE: the deliberate panic below prints a short backtrace banner
    // to stderr — expected. (Deliberately NOT swapping the process-wide
    // panic hook: tests run in parallel and a no-op hook would swallow
    // an unrelated concurrent failure's diagnostics.)
    let jobs: Vec<LaneJob<'_, u64>> = (0..8)
        .map(|i| {
            Box::new(move |w: &mut LaneWorker<'_, '_>| {
                if i == 3 {
                    panic!("deliberate mid-job failure");
                }
                Ok(w.lane_index() as u64)
            }) as LaneJob<'_, u64>
        })
        .collect();
    let err = c.run_jobs(jobs).unwrap_err();
    match err {
        RpuError::LanePanic { message, .. } => {
            assert!(
                message.contains("deliberate"),
                "payload survives: {message}"
            )
        }
        other => panic!("expected LanePanic, got {other}"),
    }
    // The cluster is not wedged: a healthy follow-up run completes.
    let jobs: Vec<LaneJob<'_, u64>> = (0..4)
        .map(|i| Box::new(move |_w: &mut LaneWorker<'_, '_>| Ok(i as u64)) as LaneJob<'_, u64>)
        .collect();
    let (got, report) = c.run_jobs(jobs).unwrap();
    assert_eq!(got, vec![0, 1, 2, 3]);
    assert_eq!(report.towers, 4);
}

#[test]
fn failing_job_error_short_circuits_cleanly() {
    // An Err (not panic) from a job behaves the same: first error wins,
    // no hang, no partial silent result.
    let rpu = Rpu::builder().lanes(3).build().unwrap();
    let mut c = rpu.cluster();
    let jobs: Vec<LaneJob<'_, ()>> = (0..6)
        .map(|i| {
            Box::new(move |_w: &mut LaneWorker<'_, '_>| {
                if i % 2 == 1 {
                    Err(RpuError::Config(format!("job {i} refused")))
                } else {
                    Ok(())
                }
            }) as LaneJob<'_, ()>
        })
        .collect();
    assert!(matches!(c.run_jobs(jobs), Err(RpuError::Config(_))));
}

#[test]
fn work_stealing_keeps_every_lane_busy() {
    // 7 towers over 3 lanes: the steal queue must hand 3/2/2 (in some
    // order) to the lanes — never 7/0/0 — and an idle-prone static
    // partition cannot happen because lanes pull work themselves.
    let n = 1024usize;
    let towers = 7usize;
    let primes = find_ntt_prime_chain(60, 2 * n as u128, towers);
    let a: Vec<Vec<u128>> = primes
        .iter()
        .map(|&q| (0..n as u128).map(|i| (i * 3 + 1) % q).collect())
        .collect();
    let rpu = Rpu::builder().lanes(3).build().unwrap();
    let mut exec = RnsExecutor::new(rpu.cluster());
    // The split depends on thread timing; retry on a pathologically
    // starved run (warm caches make repeats of that negligible). The
    // work-conserving invariants hold on every attempt: all towers
    // execute exactly once, and the aggregates add up.
    let mut spread = None;
    for _ in 0..3 {
        let (_, report) = exec.negacyclic_mul_towers(n, &primes, &a, &a).unwrap();
        assert_eq!(report.lanes, 3);
        let loads: Vec<u64> = report.per_lane.iter().map(|l| l.dispatches).collect();
        assert_eq!(loads.iter().sum::<u64>(), towers as u64);
        if report.lanes_used() >= 2 && *loads.iter().max().unwrap() <= 5 {
            spread = Some(report);
            break;
        }
    }
    let report = spread.expect("stealing must spread 7 towers over >=2 lanes within 3 runs");
    // aggregate identities
    assert_eq!(
        report.total_cycles,
        report.per_lane.iter().map(|l| l.cycles).sum::<u64>()
    );
    assert!(
        (report.sequential_us - report.per_lane.iter().map(|l| l.busy_us).sum::<f64>()).abs()
            < 1e-9
    );
    let max_busy = report
        .per_lane
        .iter()
        .map(|l| l.busy_us)
        .fold(0.0, f64::max);
    assert!((report.makespan_us - max_busy).abs() < 1e-9);
}

#[test]
fn executor_failure_surfaces_not_hangs() {
    // Tower 1's operand length is valid at the shape check but its
    // modulus admits no degree-n NTT: kernel generation fails on a
    // worker thread and the error must surface to the caller.
    let n = 1024usize;
    let good = find_ntt_prime_chain(60, 2 * n as u128, 1)[0];
    let bad = 97u128; // 97 ≢ 1 (mod 2048): no negacyclic NTT
    let a = vec![vec![1u128; n], vec![1u128; n]];
    let rpu = Rpu::builder().lanes(2).build().unwrap();
    let mut exec = RnsExecutor::new(rpu.cluster());
    let err = exec
        .negacyclic_mul_towers(n, &[good, bad], &a, &a)
        .unwrap_err();
    assert!(matches!(err, RpuError::Codegen(_)), "got {err}");
}

#[test]
fn rns_polynomial_mul_round_trips_through_cluster() {
    // RnsExecutor::mul over RnsPolynomial towers == host RnsPolynomial
    // mul, including CRT reconstruction of the wide coefficients.
    let n = rpu::smoke_cap(1024);
    let primes = find_ntt_prime_chain(60, 2 * n as u128, 3);
    let ctx = rpu::RnsPolynomial::context(n, &primes).unwrap();
    let a_coeffs: Vec<u128> = (0..n as u128).map(|i| (i << 64) | (i * 977 + 5)).collect();
    let b_coeffs: Vec<u128> = (0..n as u128).map(|i| u128::MAX - i * 3).collect();
    let a = rpu::RnsPolynomial::from_u128_coeffs(&ctx, &a_coeffs).unwrap();
    let b = rpu::RnsPolynomial::from_u128_coeffs(&ctx, &b_coeffs).unwrap();

    let rpu_dev = Rpu::builder().lanes(2).build().unwrap();
    let mut exec = RnsExecutor::new(rpu_dev.cluster());
    let (got, report) = exec.mul(&a, &b).unwrap();
    let want = a.mul(&b);
    assert_eq!(got.tower_coeffs(), want.tower_coeffs());
    assert_eq!(
        got.to_big_coeffs(),
        want.to_big_coeffs(),
        "CRT-wide coefficients agree"
    );
    assert_eq!(report.towers, 3);

    // mismatched contexts are rejected up front
    let other = rpu::RnsPolynomial::context(n, &primes[..2]).unwrap();
    let c = rpu::RnsPolynomial::from_u128_coeffs(&other, &a_coeffs).unwrap();
    assert!(matches!(exec.mul(&a, &c), Err(RpuError::Config(_))));
}

#[test]
fn evaluator_convolve_rejects_split_operands() {
    // RlweEvaluator::convolve over buffers on different lanes must
    // refuse rather than silently migrate or corrupt.
    use rpu::ntt::rlwe::RlweParams;
    let n = 1024usize;
    let rpu = Rpu::builder().lanes(2).build().unwrap();
    let q = rpu.session().primes_for(n).unwrap();
    let mut eval =
        rpu::RlweEvaluator::new(&rpu, RlweParams { n, q, t: 65537 }, CodegenStyle::Optimized)
            .unwrap();
    let data = vec![1u128; n];
    let da = eval.cluster_mut().upload_to(0, &data).unwrap();
    let db = eval.cluster_mut().upload_to(1, &data).unwrap();
    assert!(matches!(
        eval.convolve(&da, &db),
        Err(RpuError::Buffer(BufferError::ForeignLane { .. }))
    ));
    // co-resident operands work, on either lane
    let db0 = eval.cluster_mut().upload_to(0, &data).unwrap();
    let out = eval.convolve(&da, &db0).unwrap();
    assert_eq!(eval.cluster_mut().download(&out).unwrap().len(), n);
}

#[test]
fn multi_lane_evaluator_matches_host_rlwe() {
    // The whole RLWE pipeline on a two-lane evaluator (mask ops on lane
    // 0, payload ops on lane 1) equals the host reference exactly —
    // sharding the ciphertext components must be invisible.
    use rpu::ntt::rlwe::{RlweContext, RlweParams, Splitmix};
    let n = 1024usize;
    let rpu = Rpu::builder().lanes(2).build().unwrap();
    let q = rpu.session().primes_for(n).unwrap();
    let p = RlweParams { n, q, t: 65537 };
    let mut eval = rpu::RlweEvaluator::new(&rpu, p, CodegenStyle::Optimized).unwrap();
    assert_eq!(eval.component_lanes(), (0, 1));
    let host = RlweContext::new(p).unwrap();

    let mut dev_rng = Splitmix::new(77);
    let mut host_rng = Splitmix::new(77);
    let host_sk = host.keygen(&mut host_rng);
    eval.keygen(&mut dev_rng).unwrap();

    let msg: Vec<u128> = (0..n as u128).map(|i| (i * 13 + 7) % 1000).collect();
    let ct = eval.encrypt(&msg, &mut dev_rng).unwrap();
    let host_ct = host.encrypt(&host_sk, &msg, &mut host_rng);
    let downloaded = eval.download_ciphertext(&ct).unwrap();
    assert_eq!(downloaded.a().values(), host_ct.a().values());
    assert_eq!(downloaded.b().values(), host_ct.b().values());

    let sum = eval.add(&ct, &ct).unwrap();
    assert_eq!(
        eval.decrypt(&sum).unwrap(),
        host.decrypt(&host_sk, &host.add(&host_ct, &host_ct))
    );
    assert_eq!(eval.decrypt(&ct).unwrap(), msg);

    // both lanes actually carried dispatches
    let s0 = eval.cluster().lane_stats(0);
    let s1 = eval.cluster().lane_stats(1);
    assert!(s0.dispatches > 0 && s1.dispatches > 0);
    // overlap: the busiest lane is strictly cheaper than the sum
    assert!(eval.makespan_us() < eval.simulated_us());
}
