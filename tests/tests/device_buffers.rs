//! Integration tests for the device-resident buffer API: upload /
//! download round trips, allocator exhaustion and reuse, dispatch
//! validation, and resident pipelines that avoid per-op host traffic.

use proptest::prelude::*;
use rpu::{
    BufferAllocator, BufferError, CodegenStyle, Direction, ElementwiseOp, ElementwiseSpec,
    KernelSpec, NttSpec, PrimeTable, Rpu, RpuConfig, RpuError,
};

/// Asserts the allocator's structural invariants: free and live blocks
/// partition `[base, base + capacity)` with no overlap, and coalescing
/// leaves no two adjacent free blocks.
fn assert_allocator_invariants(a: &BufferAllocator, base: usize, capacity: usize) {
    let free = a.free_blocks();
    let live = a.live_blocks();
    // free list is sorted, in-range, and fully coalesced
    for w in free.windows(2) {
        assert!(
            w[0].0 + w[0].1 < w[1].0,
            "adjacent/overlapping free blocks: {free:?}"
        );
    }
    for &(off, len) in &free {
        assert!(
            len > 0 && off >= base && off + len <= base + capacity,
            "free {free:?}"
        );
    }
    // live blocks don't overlap each other or any free block
    let mut all: Vec<(usize, usize, bool)> = free.iter().map(|&(o, l)| (o, l, true)).collect();
    all.extend(live.iter().map(|&(o, l)| (o, l, false)));
    all.sort_unstable();
    for w in all.windows(2) {
        assert!(w[0].0 + w[0].1 <= w[1].0, "overlap in {all:?}");
    }
    // free + live partition the heap exactly
    let covered: usize = all.iter().map(|&(_, l, _)| l).sum();
    assert_eq!(
        covered, capacity,
        "free {free:?} + live {live:?} must cover the heap"
    );
    assert_eq!(a.in_use(), live.iter().map(|&(_, l)| l).sum::<usize>());
}

fn test_data(len: usize, seed: u64) -> Vec<u128> {
    (0..len as u128)
        .map(|i| {
            i.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(seed as u128)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Mixed-size buffers uploaded in one order and downloaded in
    /// another come back bit-exact.
    #[test]
    fn upload_download_round_trips(
        lens in prop::collection::vec(1usize..3000, 1..8),
        seed in any::<u64>(),
    ) {
        let rpu = Rpu::builder().build().unwrap();
        let mut s = rpu.session();
        let data: Vec<Vec<u128>> = lens
            .iter()
            .enumerate()
            .map(|(i, &l)| test_data(l, seed ^ i as u64))
            .collect();
        let bufs: Vec<_> = data.iter().map(|d| s.upload(d).unwrap()).collect();
        // download in reverse order: buffers must not alias
        for (buf, expect) in bufs.iter().zip(&data).rev() {
            prop_assert_eq!(&s.download(buf).unwrap(), expect);
        }
        for buf in bufs {
            s.free(buf).unwrap();
        }
        prop_assert_eq!(s.device_mem_in_use(), 0);
    }

    /// Freeing and reallocating arbitrary subsets never corrupts the
    /// survivors.
    #[test]
    fn alloc_free_interleave_preserves_survivors(
        lens in prop::collection::vec(1usize..1500, 2..10),
        drop_mask in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let rpu = Rpu::builder().build().unwrap();
        let mut s = rpu.session();
        let data: Vec<Vec<u128>> = lens
            .iter()
            .enumerate()
            .map(|(i, &l)| test_data(l, seed ^ (i as u64) << 8))
            .collect();
        let bufs: Vec<_> = data.iter().map(|d| s.upload(d).unwrap()).collect();
        let mut live = Vec::new();
        for (i, buf) in bufs.into_iter().enumerate() {
            if drop_mask >> (i % 64) & 1 == 1 {
                s.free(buf).unwrap();
            } else {
                live.push((buf, &data[i]));
            }
        }
        // allocate into the holes, overwriting with fresh patterns
        let extra: Vec<_> = (0..3)
            .map(|i| {
                let d = test_data(700, seed ^ 0xABCD ^ i);
                (s.upload(&d).unwrap(), d)
            })
            .collect();
        for (buf, expect) in &live {
            prop_assert_eq!(&s.download(buf).unwrap(), *expect);
        }
        for (buf, expect) in &extra {
            prop_assert_eq!(&s.download(buf).unwrap(), expect);
        }
    }

    /// Allocator invariants hold after every step of a random
    /// alloc/free interleaving driven directly against the allocator:
    /// free + live partition the heap, nothing overlaps, and frees
    /// always coalesce (no two adjacent free blocks survive).
    #[test]
    fn allocator_invariants_hold_under_random_interleavings(
        ops in prop::collection::vec((any::<u16>(), 1usize..700), 1..60),
        base in 0usize..2048,
    ) {
        let capacity = 8192usize;
        let mut a = BufferAllocator::new(base, capacity);
        let mut live = Vec::new();
        for (sel, len) in ops {
            // ~1/3 frees (when anything is live), ~2/3 allocs
            if sel % 3 == 0 && !live.is_empty() {
                let victim = live.swap_remove(sel as usize % live.len());
                a.free(&victim).unwrap();
            } else {
                match a.alloc(len) {
                    Ok(buf) => live.push(buf),
                    Err(BufferError::OutOfMemory { largest_free, .. }) => {
                        // the refusal must be honest: no free block fits
                        prop_assert!(largest_free < len);
                    }
                    Err(e) => panic!("unexpected alloc failure: {e}"),
                }
            }
            assert_allocator_invariants(&a, base, capacity);
        }
        // drain everything: the heap must coalesce back to one block
        for buf in live {
            a.free(&buf).unwrap();
            assert_allocator_invariants(&a, base, capacity);
        }
        prop_assert_eq!(a.free_blocks(), vec![(base, capacity)]);
        prop_assert_eq!(a.in_use(), 0);
    }

    /// The same invariants through the cluster API, with `migrate`
    /// mixed in: random alloc/free/migrate interleavings over two lanes
    /// leave every lane's heap consistent and every surviving buffer's
    /// contents intact.
    #[test]
    fn cluster_alloc_free_migrate_interleavings_stay_consistent(
        ops in prop::collection::vec((any::<u16>(), 1usize..500), 1..24),
        seed in any::<u64>(),
    ) {
        let rpu = Rpu::builder().device_heap_elements(4096).lanes(2).build().unwrap();
        let mut c = rpu.cluster();
        let mut live: Vec<(rpu::DeviceBuffer, Vec<u128>)> = Vec::new();
        for (i, (sel, len)) in ops.into_iter().enumerate() {
            match sel % 4 {
                0 | 1 => {
                    let data = test_data(len, seed ^ i as u64);
                    let lane = (sel / 4) as usize % 2;
                    if let Ok(buf) = c.upload_to(lane, &data) {
                        live.push((buf, data));
                    }
                }
                2 if !live.is_empty() => {
                    let (buf, _) = live.swap_remove(sel as usize % live.len());
                    c.free(buf).unwrap();
                }
                _ if !live.is_empty() => {
                    let idx = sel as usize % live.len();
                    let to = (sel / 8) as usize % 2;
                    let (buf, data) = live.swap_remove(idx);
                    match c.migrate(buf, to) {
                        Ok(moved) => live.push((moved, data)),
                        Err(RpuError::Buffer(BufferError::OutOfMemory { .. })) => {
                            // failed migrate must leave the source live
                            prop_assert_eq!(&c.download(&buf).unwrap(), &data);
                            live.push((buf, data));
                        }
                        Err(e) => panic!("unexpected migrate failure: {e}"),
                    }
                }
                _ => {}
            }
            // every survivor still holds its exact contents
            let total: usize = live.iter().map(|(b, _)| b.len()).sum();
            let in_use: usize =
                (0..2).map(|l| c.lane_session(l).device_mem_in_use()).sum();
            prop_assert_eq!(total, in_use, "live handles and heap accounting agree");
        }
        for (buf, data) in &live {
            prop_assert_eq!(&c.download(buf).unwrap(), data);
        }
        for (buf, _) in live {
            c.free(buf).unwrap();
        }
        prop_assert_eq!((0..2).map(|l| c.lane_session(l).device_mem_in_use()).sum::<usize>(), 0);
    }
}

#[test]
fn heap_exhaustion_and_reuse() {
    let rpu = Rpu::builder().device_heap_elements(4096).build().unwrap();
    let mut s = rpu.session();
    let a = s.upload(&test_data(2048, 1)).unwrap();
    let b = s.upload(&test_data(2048, 2)).unwrap();
    // full: the next allocation reports what is left
    match s.alloc(1) {
        Err(RpuError::Buffer(BufferError::OutOfMemory {
            requested,
            largest_free,
            free_total,
        })) => {
            assert_eq!((requested, largest_free, free_total), (1, 0, 0));
        }
        other => panic!("expected OutOfMemory, got {other:?}"),
    }
    // free the *first* block: its space is reused (first fit), and the
    // survivor is untouched
    s.free(a).unwrap();
    let c = s.upload(&test_data(1024, 3)).unwrap();
    assert_eq!(c.offset_elements(), a.offset_elements());
    assert_eq!(s.download(&b).unwrap(), test_data(2048, 2));
    assert_eq!(s.download(&c).unwrap(), test_data(1024, 3));
    // freed handles are stale, even though the memory was recycled
    assert!(matches!(
        s.download(&a),
        Err(RpuError::Buffer(BufferError::StaleHandle { .. }))
    ));
    assert!(matches!(
        s.free(a),
        Err(RpuError::Buffer(BufferError::StaleHandle { .. }))
    ));
}

#[test]
fn handles_do_not_cross_sessions() {
    let rpu = Rpu::builder().build().unwrap();
    let mut s1 = rpu.session();
    let mut s2 = rpu.session();
    let foreign = s1.upload(&[1, 2, 3]).unwrap();
    assert!(matches!(
        s2.download(&foreign),
        Err(RpuError::Buffer(BufferError::StaleHandle { .. }))
    ));
}

#[test]
fn dispatch_validates_shapes() {
    let rpu = Rpu::builder().build().unwrap();
    let mut s = rpu.session();
    let q = s.primes_for(1024).unwrap();
    let mul = s
        .compile(&ElementwiseSpec::new(
            ElementwiseOp::MulMod,
            1024,
            q,
            CodegenStyle::Optimized,
        ))
        .unwrap();
    let x = s.upload(&test_data(1024, 1)).unwrap();
    let y = s.upload(&test_data(1024, 2)).unwrap();
    let short = s.upload(&test_data(512, 3)).unwrap();
    let out = s.alloc(1024).unwrap();
    // wrong operand count
    assert!(matches!(
        s.dispatch(&mul, &[x], &[out]),
        Err(RpuError::Buffer(BufferError::ArityMismatch {
            expected: 2,
            got: 1
        }))
    ));
    // wrong operand length
    assert!(matches!(
        s.dispatch(&mul, &[x, short], &[out]),
        Err(RpuError::Buffer(BufferError::LengthMismatch {
            expected: 1024,
            got: 512
        }))
    ));
    // wrong output length
    assert!(matches!(
        s.dispatch(&mul, &[x, y], &[short]),
        Err(RpuError::Buffer(BufferError::LengthMismatch { .. }))
    ));
    // stale input
    s.free(y).unwrap();
    assert!(matches!(
        s.dispatch(&mul, &[x, y], &[out]),
        Err(RpuError::Buffer(BufferError::StaleHandle { .. }))
    ));
}

#[test]
fn oversized_kernel_is_rejected_not_executed() {
    // A 64 KiB VDM (4096 elements) cannot hold a 1024-point NTT's
    // working set (ping-pong buffers + twiddles).
    let config = RpuConfig {
        vdm_bytes: 64 << 10,
        ..RpuConfig::pareto_128x128()
    };
    let rpu = Rpu::builder().config(config).build().unwrap();
    let mut s = rpu.session();
    let q = PrimeTable::new().ntt_prime(1024).unwrap();
    let ntt = s
        .compile(&NttSpec::new(
            1024,
            q,
            Direction::Forward,
            CodegenStyle::Optimized,
        ))
        .unwrap();
    let x = s.upload(&test_data(1024, 1)).unwrap();
    let out = s.alloc(1024).unwrap();
    assert!(matches!(
        s.dispatch(&ntt, &[x], &[out]),
        Err(RpuError::Buffer(BufferError::WorkspaceOverflow { .. }))
    ));
}

#[test]
fn ntt_round_trips_on_device() {
    let rpu = Rpu::builder().build().unwrap();
    let mut s = rpu.session();
    let n = 1024usize;
    let q = s.primes_for(n).unwrap();
    let fwd = s
        .compile(&NttSpec::new(
            n,
            q,
            Direction::Forward,
            CodegenStyle::Optimized,
        ))
        .unwrap();
    let inv = s
        .compile(&NttSpec::new(
            n,
            q,
            Direction::Inverse,
            CodegenStyle::Optimized,
        ))
        .unwrap();
    let input: Vec<u128> = (0..n as u128).map(|i| (i * 31 + 5) % q).collect();
    let x = s.upload(&input).unwrap();
    let hat = s.alloc(n).unwrap();
    let back = s.alloc(n).unwrap();
    let r1 = s.dispatch(&fwd, &[x], &[hat]).unwrap();
    let r2 = s.dispatch(&inv, &[hat], &[back]).unwrap();
    assert_eq!(s.download(&back).unwrap(), input);
    assert!(r1.verified && r2.verified, "compile() verified both shapes");
    assert_eq!(r1.transfer.host_to_device + r2.transfer.host_to_device, 0);
    // the evaluation-form buffer really is the transform, not a copy
    assert_ne!(s.download(&hat).unwrap(), input);
}

#[test]
fn run_with_matches_kernel_execute() {
    let rpu = Rpu::builder().build().unwrap();
    let mut s = rpu.session();
    let q = s.primes_for(1024).unwrap();
    let spec = ElementwiseSpec::new(ElementwiseOp::SubMod, 1024, q, CodegenStyle::Optimized);
    let a = test_data(1024, 7).iter().map(|v| v % q).collect::<Vec<_>>();
    let b = test_data(1024, 8).iter().map(|v| v % q).collect::<Vec<_>>();
    let (got, report) = s.run_with(&spec, &[&a, &b]).unwrap();
    let expect = s.kernel(&spec).unwrap().execute(&[&a, &b]).unwrap();
    assert_eq!(got, expect);
    assert_eq!(report.transfer.host_to_device, 2048);
    assert_eq!(report.transfer.device_to_host, 1024);
    assert_eq!(s.device_mem_in_use(), 0, "round-trip scratch is freed");
}

/// The headline contract: an L-op resident chain moves host data once,
/// while L one-shot runs move it L times.
#[test]
fn resident_chain_uploads_once() {
    let rpu = Rpu::builder().build().unwrap();
    let mut s = rpu.session();
    let n = 1024usize;
    let q = s.primes_for(n).unwrap();
    let spec = ElementwiseSpec::new(ElementwiseOp::MulMod, n, q, CodegenStyle::Optimized);
    let mul = s.compile(&spec).unwrap();
    let l = 8;

    // Resident: 1 upload + L dispatches + 1 download.
    let x0: Vec<u128> = (0..n as u128).map(|i| (i + 2) % q).collect();
    let w: Vec<u128> = (0..n as u128).map(|i| (3 * i + 1) % q).collect();
    let mut host_elems = 0usize;
    let xb = s.upload(&x0).unwrap();
    let wb = s.upload(&w).unwrap();
    host_elems += 2 * n;
    let tmp = s.alloc(n).unwrap();
    let (mut cur, mut other) = (xb, tmp);
    for _ in 0..l {
        let r = s.dispatch(&mul, &[cur, wb], &[other]).unwrap();
        host_elems += r.transfer.host_elements(); // stays zero
        std::mem::swap(&mut cur, &mut other);
    }
    let resident_result = s.download(&cur).unwrap();
    host_elems += n;
    assert_eq!(host_elems, 3 * n, "1 upload (2 operands) + 1 download");

    // The same chain as L independent one-shot runs: L full round trips.
    let m = rpu::arith::Modulus128::new(q).unwrap();
    let mut roundtrip_elems = 0usize;
    let mut cur = x0.clone();
    for _ in 0..l {
        let (out, r) = s.run_with(&spec, &[&cur, &w]).unwrap();
        roundtrip_elems += r.transfer.host_elements();
        cur = out;
    }
    assert_eq!(cur, resident_result, "both paths compute the same chain");
    assert_eq!(roundtrip_elems, l * 3 * n, "L × (2 uploads + 1 download)");
    // host-side reference
    let mut expect = x0;
    for _ in 0..l {
        expect = expect
            .iter()
            .zip(&w)
            .map(|(&a, &b)| m.mul(a % q, b % q))
            .collect();
    }
    assert_eq!(resident_result, expect);
}

#[test]
fn free_then_dispatch_is_rejected_without_side_effects() {
    let n = 1024usize;
    let rpu = Rpu::builder().build().unwrap();
    let mut s = rpu.session();
    let q = s.primes_for(n).unwrap();
    let mul = s
        .compile(&ElementwiseSpec::new(
            ElementwiseOp::MulMod,
            n,
            q,
            CodegenStyle::Optimized,
        ))
        .unwrap();
    let x = s.upload(&vec![2u128; n]).unwrap();
    let y = s.upload(&vec![3u128; n]).unwrap();
    let out = s.alloc(n).unwrap();
    let dead = s.upload(&vec![9u128; n]).unwrap();
    s.free(dead).unwrap();

    // freed input
    assert!(matches!(
        s.dispatch(&mul, &[dead, y], &[out]),
        Err(RpuError::Buffer(BufferError::StaleHandle { .. }))
    ));
    // freed output
    assert!(matches!(
        s.dispatch(&mul, &[x, y], &[dead]),
        Err(RpuError::Buffer(BufferError::StaleHandle { .. }))
    ));
    // the live buffers still dispatch cleanly afterwards
    s.dispatch(&mul, &[x, y], &[out]).unwrap();
    assert_eq!(s.download(&out).unwrap(), vec![6u128; n]);
}

#[test]
fn double_free_reports_stale_and_keeps_heap_consistent() {
    let rpu = Rpu::builder().device_heap_elements(4096).build().unwrap();
    let mut s = rpu.session();
    let a = s.upload(&test_data(1024, 7)).unwrap();
    let b = s.upload(&test_data(1024, 8)).unwrap();
    s.free(a).unwrap();
    assert!(matches!(
        s.free(a),
        Err(RpuError::Buffer(BufferError::StaleHandle { .. }))
    ));
    // the double free must not have freed or merged the survivor's block
    assert_eq!(s.device_mem_in_use(), 1024);
    assert_eq!(s.live_buffers(), 1);
    assert_eq!(s.download(&b).unwrap(), test_data(1024, 8));
    // and both free fragments around the survivor are still allocatable
    assert!(s.alloc(1024).is_ok()); // the hole `a` left
    assert!(s.alloc(2048).is_ok()); // the untouched tail
}

#[test]
fn stale_handle_stays_stale_after_heap_growth() {
    // The backing simulator grows lazily with the heap high-water mark;
    // a handle freed *before* a growth must not resurrect once its
    // offset range exists again (ids, not offsets, define liveness).
    let rpu = Rpu::builder()
        .device_heap_elements(1 << 16)
        .build()
        .unwrap();
    let mut s = rpu.session();
    let small = s.upload(&test_data(256, 1)).unwrap();
    s.free(small).unwrap();
    // force simulator growth well past the freed range
    let big = s.upload(&test_data(1 << 15, 2)).unwrap();
    assert!(matches!(
        s.download(&small),
        Err(RpuError::Buffer(BufferError::StaleHandle { .. }))
    ));
    assert!(matches!(
        s.write(&small, &test_data(256, 3)),
        Err(RpuError::Buffer(BufferError::StaleHandle { .. }))
    ));
    // the grown allocation is intact and the freed id was not recycled
    assert_eq!(s.download(&big).unwrap(), test_data(1 << 15, 2));
    assert_ne!(big.id(), small.id());
}

#[test]
fn dispatch_stays_correct_after_heap_growth() {
    // Regression test for the fast-path executor against lazy simulator
    // growth: a kernel dispatched *before* `ensure_vdm` grows the
    // backing memory must still compute correctly *after* a growth —
    // nothing pre-resolved at compile() time may point at the old
    // allocation. Dispatching the interpreter alongside pins the
    // expected values.
    let n = 1024usize;
    let rpu = Rpu::builder()
        .device_heap_elements(1 << 16)
        .build()
        .unwrap();
    let interp = Rpu::builder()
        .device_heap_elements(1 << 16)
        .force_interpreter(true)
        .build()
        .unwrap();
    let mut s = rpu.session();
    let mut o = interp.session();
    let q = s.primes_for(n).unwrap();
    let spec = ElementwiseSpec::new(ElementwiseOp::MulMod, n, q, CodegenStyle::Optimized);
    let mul = s.compile(&spec).unwrap();
    let mul_o = o.compile(&spec).unwrap();

    let run = |s: &mut rpu::RpuSession<'_>, k, a: &[u128], b: &[u128]| {
        let x = s.upload(a).unwrap();
        let y = s.upload(b).unwrap();
        let out = s.alloc(n).unwrap();
        s.dispatch(k, &[x, y], &[out]).unwrap();
        let got = s.download(&out).unwrap();
        s.free(x).unwrap();
        s.free(y).unwrap();
        s.free(out).unwrap();
        got
    };

    let a = test_data(n, 21).iter().map(|v| v % q).collect::<Vec<_>>();
    let b = test_data(n, 22).iter().map(|v| v % q).collect::<Vec<_>>();
    assert_eq!(run(&mut s, &mul, &a, &b), run(&mut o, &mul_o, &a, &b));

    // Force the backing simulator to grow well past the first dispatch's
    // high-water mark, then dispatch the *same* compiled kernel again at
    // buffers living in the newly grown range.
    let big = s.upload(&test_data(1 << 15, 2)).unwrap();
    let big_o = o.upload(&test_data(1 << 15, 2)).unwrap();
    let c = test_data(n, 23).iter().map(|v| v % q).collect::<Vec<_>>();
    let d = test_data(n, 24).iter().map(|v| v % q).collect::<Vec<_>>();
    assert_eq!(run(&mut s, &mul, &c, &d), run(&mut o, &mul_o, &c, &d));
    // untouched by either post-growth dispatch
    assert_eq!(s.download(&big).unwrap(), test_data(1 << 15, 2));
    assert_eq!(o.download(&big_o).unwrap(), test_data(1 << 15, 2));
}

#[test]
fn oversized_kernel_image_is_an_exec_error_not_a_panic() {
    // `Kernel::load_into` on a too-small simulator used to panic inside
    // `write_vdm`; it must now surface as `RpuError::Exec` with the
    // fail-closed `HostTransferOutOfBounds` inside.
    let n = 1024usize;
    let q = rpu::arith::find_ntt_prime_u128(126, 2 * n as u128).unwrap();
    let kernel = NttSpec::new(n, q, Direction::Forward, CodegenStyle::Optimized)
        .generate()
        .unwrap();
    let mut sim = rpu::FunctionalSim::new(16, 1);
    match kernel.load_into(&mut sim) {
        Err(rpu::sim::ExecError::HostTransferOutOfBounds { memory, .. }) => {
            assert_eq!(memory, "VDM");
        }
        other => panic!("expected HostTransferOutOfBounds, got {other:?}"),
    }
}
