//! Ciphertext×ciphertext multiplication and Galois rotation on the
//! RPU vs the host `RlweContext` reference — bit-exact, on any lane
//! count. Both paths draw the same randomness stream, so device key
//! material equals host key material and the comparison is on ring
//! elements, not just decryptions.
//!
//! Ring sizes honour `RPU_MAX_N` so the CI matrix can run the suite at
//! 1024 and 4096; the lane matrix covers 1/2/4 lanes per the
//! acceptance criteria.

use proptest::prelude::*;
use rpu::ntt::rlwe::{RlweContext, RlweParams, Splitmix};
use rpu::ntt::testutil::schoolbook_negacyclic;
use rpu::{CodegenStyle, PrimeTable, RlweEvaluator, Rpu, RpuError};

const T: u128 = 65537;

fn params(n: usize) -> RlweParams {
    let q = PrimeTable::new().ntt_prime(n).expect("prime exists");
    RlweParams { n, q, t: T }
}

fn message(n: usize, seed: u128) -> Vec<u128> {
    (0..n as u128)
        .map(|i| (i * 31 + seed * 7 + 1) % 257)
        .collect()
}

/// Builds a seed-synchronized (device evaluator, host context) pair
/// with keys, relin key, and the requested rotation keys on both sides.
fn synced<'a>(
    rpu: &'a Rpu,
    p: RlweParams,
    seed: u64,
    rotation_steps: &[usize],
) -> (
    RlweEvaluator<'a>,
    RlweContext,
    rpu::ntt::rlwe::SecretKey,
    rpu::ntt::rlwe::RelinKey,
    Vec<rpu::ntt::rlwe::GaloisKey>,
    Splitmix,
    Splitmix,
) {
    let mut eval = RlweEvaluator::new(rpu, p, CodegenStyle::Optimized).unwrap();
    let host = RlweContext::new(p).unwrap();
    let mut dev_rng = Splitmix::new(seed);
    let mut host_rng = Splitmix::new(seed);
    let base_log = eval.key_base_log();
    eval.keygen(&mut dev_rng).unwrap();
    let host_sk = host.keygen(&mut host_rng);
    eval.relin_keygen(&mut dev_rng).unwrap();
    let host_rk = host.relin_keygen(&host_sk, &mut host_rng, base_log);
    let mut host_gks = Vec::new();
    for &steps in rotation_steps {
        let g = eval.rotation_keygen(steps, &mut dev_rng).unwrap();
        host_gks.push(
            host.galois_keygen(&host_sk, g, &mut host_rng, base_log)
                .unwrap(),
        );
    }
    (eval, host, host_sk, host_rk, host_gks, dev_rng, host_rng)
}

/// `mul` then `rotate` on the device equal the host reference as *ring
/// elements* (same a/b evaluations), and both decrypt to the expected
/// plaintexts — across 1, 2, and 4 lanes.
#[test]
fn mul_and_rotate_match_host_exactly_across_lane_counts() {
    let n = 1024usize;
    let p = params(n);
    for lanes in [1usize, 2, 4] {
        let rpu = Rpu::builder().lanes(lanes).build().unwrap();
        let (mut eval, host, host_sk, host_rk, host_gks, mut dev_rng, mut host_rng) =
            synced(&rpu, p, 0xB512 + lanes as u64, &[1]);

        let m1 = message(n, 3);
        let m2 = message(n, 8);
        let x = eval.encrypt(&m1, &mut dev_rng).unwrap();
        let y = eval.encrypt(&m2, &mut dev_rng).unwrap();
        let hx = host.encrypt(&host_sk, &m1, &mut host_rng);
        let hy = host.encrypt(&host_sk, &m2, &mut host_rng);

        // --- multiply ---
        let prod = eval.mul(&x, &y).unwrap();
        let host_prod = host.mul(&host_rk, &hx, &hy);
        let downloaded = eval.download_ciphertext(&prod).unwrap();
        assert_eq!(
            downloaded.a().values(),
            host_prod.a().values(),
            "{lanes} lane(s): mask of the product"
        );
        assert_eq!(
            downloaded.b().values(),
            host_prod.b().values(),
            "{lanes} lane(s): payload of the product"
        );
        let t = rpu::arith::Modulus128::new(T).unwrap();
        let expect = schoolbook_negacyclic(t, &m1, &m2);
        assert_eq!(eval.decrypt(&prod).unwrap(), expect, "{lanes} lane(s)");

        // --- rotate ---
        let g = host_gks[0].galois_element();
        let rotated = eval.rotate(&x, 1).unwrap();
        let host_rot = host.apply_galois(&host_gks[0], &hx).unwrap();
        let downloaded = eval.download_ciphertext(&rotated).unwrap();
        assert_eq!(
            downloaded.a().values(),
            host_rot.a().values(),
            "{lanes} lane(s): rotated mask"
        );
        assert_eq!(
            downloaded.b().values(),
            host_rot.b().values(),
            "{lanes} lane(s): rotated payload"
        );
        assert_eq!(
            eval.decrypt(&rotated).unwrap(),
            host.rotate_plaintext(&m1, g).unwrap(),
            "{lanes} lane(s): rotation decrypts to σ_g(m)"
        );

        for ct in [x, y, prod, rotated] {
            eval.free_ciphertext(ct).unwrap();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random messages and rotation amounts through a 2-lane evaluator:
    /// rotation decrypts to σ_g(m) and multiplication to m1·m2, always.
    #[test]
    fn random_messages_and_rotations_decrypt_correctly(
        seed in any::<u64>(),
        steps in 1usize..6,
        mseed in 0u128..1000,
    ) {
        let n = 1024usize;
        let p = params(n);
        let rpu = Rpu::builder().lanes(2).build().unwrap();
        let (mut eval, host, _sk, _rk, host_gks, mut dev_rng, _h) =
            synced(&rpu, p, seed, &[steps]);
        let g = host_gks[0].galois_element();

        let m1 = message(n, mseed);
        let m2 = message(n, mseed ^ 0x5A5A);
        let x = eval.encrypt(&m1, &mut dev_rng).unwrap();
        let y = eval.encrypt(&m2, &mut dev_rng).unwrap();

        let rotated = eval.rotate(&x, steps).unwrap();
        prop_assert_eq!(
            eval.decrypt(&rotated).unwrap(),
            host.rotate_plaintext(&m1, g).unwrap()
        );

        let prod = eval.mul(&x, &y).unwrap();
        let t = rpu::arith::Modulus128::new(T).unwrap();
        prop_assert_eq!(eval.decrypt(&prod).unwrap(), schoolbook_negacyclic(t, &m1, &m2));
    }
}

/// Multiplication composes with the existing operations: (x·y) + x and
/// rotate(x·y) both decrypt to the expected plaintexts.
#[test]
fn mul_composes_with_add_and_rotate() {
    let n = 1024usize;
    let p = params(n);
    let rpu = Rpu::builder().lanes(2).build().unwrap();
    let (mut eval, host, _sk, _rk, host_gks, mut dev_rng, _h) = synced(&rpu, p, 77, &[2]);
    let g = host_gks[0].galois_element();

    let m1 = message(n, 1);
    let m2 = message(n, 2);
    let x = eval.encrypt(&m1, &mut dev_rng).unwrap();
    let y = eval.encrypt(&m2, &mut dev_rng).unwrap();
    let prod = eval.mul(&x, &y).unwrap();

    let t = rpu::arith::Modulus128::new(T).unwrap();
    let mut prod_plus = schoolbook_negacyclic(t, &m1, &m2);

    // rotate the product
    let rotated = eval.rotate(&prod, 2).unwrap();
    assert_eq!(
        eval.decrypt(&rotated).unwrap(),
        host.rotate_plaintext(&prod_plus, g).unwrap()
    );

    // add x to the product
    let sum = eval.add(&prod, &x).unwrap();
    for (e, &m) in prod_plus.iter_mut().zip(&m1) {
        *e = (*e + m) % T;
    }
    assert_eq!(eval.decrypt(&sum).unwrap(), prod_plus);
}

/// The acceptance shape at the (possibly capped) larger ring: one
/// multiply and one rotation on 2 lanes, decrypting exactly.
#[test]
fn capped_large_ring_mul_and_rotate() {
    let n = rpu::smoke_cap(2048);
    let p = params(n);
    let rpu = Rpu::builder().lanes(2).build().unwrap();
    let (mut eval, host, _sk, _rk, host_gks, mut dev_rng, _h) = synced(&rpu, p, 5, &[1]);
    let g = host_gks[0].galois_element();

    let m1 = message(n, 9);
    let m2 = message(n, 4);
    let x = eval.encrypt(&m1, &mut dev_rng).unwrap();
    let y = eval.encrypt(&m2, &mut dev_rng).unwrap();
    let t = rpu::arith::Modulus128::new(T).unwrap();
    let prod = eval.mul(&x, &y).unwrap();
    assert_eq!(
        eval.decrypt(&prod).unwrap(),
        schoolbook_negacyclic(t, &m1, &m2)
    );
    let rotated = eval.rotate(&x, 1).unwrap();
    assert_eq!(
        eval.decrypt(&rotated).unwrap(),
        host.rotate_plaintext(&m1, g).unwrap()
    );
    // multiplication consumed nothing: operands still decrypt
    assert_eq!(eval.decrypt(&x).unwrap(), m1);
    assert_eq!(eval.decrypt(&y).unwrap(), m2);
}

/// Key discipline: mul/rotate without their keys are clean errors, and
/// a re-key invalidates old key material rather than silently using it.
#[test]
fn missing_keys_error_cleanly() {
    let n = 1024usize;
    let p = params(n);
    let rpu = Rpu::builder().build().unwrap();
    let mut eval = RlweEvaluator::new(&rpu, p, CodegenStyle::Optimized).unwrap();
    let mut rng = Splitmix::new(1);
    eval.keygen(&mut rng).unwrap();
    let m = message(n, 0);
    let x = eval.encrypt(&m, &mut rng).unwrap();
    assert!(matches!(eval.mul(&x, &x), Err(RpuError::Config(_))));
    assert!(matches!(eval.rotate(&x, 1), Err(RpuError::Config(_))));

    // generate keys, then re-key: the evaluator must drop them
    eval.relin_keygen(&mut rng).unwrap();
    eval.rotation_keygen(1, &mut rng).unwrap();
    assert!(eval.relin_key().is_some());
    let elements_with_keys = eval.relin_key().unwrap().resident_elements();
    assert!(elements_with_keys > 0);
    eval.keygen(&mut rng).unwrap();
    assert!(eval.relin_key().is_none(), "re-key must drop the relin key");
    assert!(eval.galois_key(5).is_none(), "re-key must drop Galois keys");
    let y = eval.encrypt(&m, &mut rng).unwrap();
    assert!(matches!(eval.mul(&y, &y), Err(RpuError::Config(_))));
}

/// The key-switch digit jobs really spread across lanes: on a 2-lane
/// evaluator a multiply must dispatch on both lanes beyond the
/// component split, and per-lane key material is replicated.
#[test]
fn digit_jobs_spread_and_key_material_is_replicated() {
    let n = 1024usize;
    let p = params(n);
    let rpu = Rpu::builder().lanes(2).build().unwrap();
    let (mut eval, _host, _sk, _rk, _gks, mut dev_rng, _h) = synced(&rpu, p, 3, &[]);
    let relin = eval.relin_key().unwrap();
    let levels = relin.levels();
    // 2 components × ℓ digits × n elements × 2 lanes
    assert_eq!(relin.resident_elements(), 2 * levels * n * 2);

    let m = message(n, 6);
    let x = eval.encrypt(&m, &mut dev_rng).unwrap();
    let before: Vec<u64> = (0..2)
        .map(|l| eval.cluster().lane_stats(l).dispatches)
        .collect();
    let prod = eval.mul(&x, &x).unwrap();
    let after: Vec<u64> = (0..2)
        .map(|l| eval.cluster().lane_stats(l).dispatches)
        .collect();
    assert!(
        after.iter().zip(&before).all(|(a, b)| a > b),
        "both lanes must carry key-switch work: {before:?} -> {after:?}"
    );
    let t = rpu::arith::Modulus128::new(T).unwrap();
    assert_eq!(
        eval.decrypt(&prod).unwrap(),
        schoolbook_negacyclic(t, &m, &m)
    );
}
