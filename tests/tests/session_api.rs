//! Integration tests for the session-based workload API: kernel
//! caching, heterogeneous batching, the fused negacyclic-convolution
//! pipeline against the reference polynomial library, and the
//! deprecated one-shot shims.

use rpu::ntt::testutil::test_vector;
use rpu::{
    CodegenStyle, ConvolutionSpec, Direction, ElementwiseOp, ElementwiseSpec, KernelOp, KernelSpec,
    NttSpec, Polynomial, PrimeTable, Rpu,
};

fn prime(n: usize) -> u128 {
    PrimeTable::new().ntt_prime(n).expect("prime exists")
}

/// The on-RPU fused convolution pipeline must agree with the reference
/// NTT polynomial library's negacyclic product.
fn convolution_matches_reference(n: usize) {
    let q = prime(n);
    let rpu = Rpu::builder().build().unwrap();
    let mut session = rpu.session();
    let spec = ConvolutionSpec::new(n, q, CodegenStyle::Optimized);

    let report = session.run(&spec).unwrap();
    assert!(report.verified, "n={n}: golden-model verification");
    assert_eq!(report.op, KernelOp::NegacyclicMul);

    // Real data through the cached kernel vs rpu_ntt's Polynomial::mul.
    let a = test_vector(n, q, 11);
    let b = test_vector(n, q, 22);
    let kernel = session.kernel(&spec).unwrap();
    let got = kernel.execute(&[&a, &b]).unwrap();

    let ctx = Polynomial::context(n, q).unwrap();
    let pa = Polynomial::from_coeffs(&ctx, a).unwrap();
    let pb = Polynomial::from_coeffs(&ctx, b).unwrap();
    let expect = pa.mul(&pb).coeffs();
    assert_eq!(got, expect, "n={n}: on-RPU product != reference poly-mult");
}

#[test]
fn convolution_matches_reference_1k() {
    convolution_matches_reference(1024);
}

#[test]
fn convolution_matches_reference_4k() {
    convolution_matches_reference(4096);
}

#[test]
fn second_run_of_identical_spec_performs_no_regeneration() {
    let rpu = Rpu::builder().build().unwrap();
    let mut session = rpu.session();
    let spec = NttSpec::new(
        1024,
        prime(1024),
        Direction::Forward,
        CodegenStyle::Optimized,
    );

    let first = session.run(&spec).unwrap();
    assert!(!first.cache_hit);
    let stats = session.cache_stats();
    assert_eq!((stats.hits, stats.misses, stats.entries), (0, 1, 1));

    let second = session.run(&spec).unwrap();
    assert!(second.cache_hit);
    let stats = session.cache_stats();
    assert_eq!(
        (stats.hits, stats.misses, stats.entries),
        (1, 1, 1),
        "second run must be a pure cache hit"
    );

    // Identical reports either way.
    assert_eq!(first.stats.cycles, second.stats.cycles);
    assert_eq!(first.verified, second.verified);

    // A *different* spec is a fresh entry, not a hit.
    let inv = NttSpec::new(
        1024,
        prime(1024),
        Direction::Inverse,
        CodegenStyle::Optimized,
    );
    session.run(&inv).unwrap();
    let stats = session.cache_stats();
    assert_eq!((stats.hits, stats.misses, stats.entries), (1, 2, 2));
}

/// Acceptance criterion: a mixed batch of ≥ 8 specs (NTT fwd/inv,
/// elementwise, convolution) completes with every report verified.
#[test]
fn mixed_batch_all_verified() {
    let q1 = prime(1024);
    let q2 = prime(2048);
    let rpu = Rpu::builder().build().unwrap();
    let mut session = rpu.session();

    let specs: Vec<Box<dyn KernelSpec>> = vec![
        Box::new(NttSpec::new(
            1024,
            q1,
            Direction::Forward,
            CodegenStyle::Optimized,
        )),
        Box::new(NttSpec::new(
            1024,
            q1,
            Direction::Inverse,
            CodegenStyle::Optimized,
        )),
        Box::new(NttSpec::new(
            2048,
            q2,
            Direction::Forward,
            CodegenStyle::Unoptimized,
        )),
        Box::new(NttSpec::new(
            2048,
            q2,
            Direction::Forward,
            CodegenStyle::StridedMemory,
        )),
        Box::new(ElementwiseSpec::new(
            ElementwiseOp::MulMod,
            1024,
            q1,
            CodegenStyle::Optimized,
        )),
        Box::new(ElementwiseSpec::new(
            ElementwiseOp::AddMod,
            2048,
            q2,
            CodegenStyle::Optimized,
        )),
        Box::new(ConvolutionSpec::new(1024, q1, CodegenStyle::Optimized)),
        Box::new(ConvolutionSpec::new(2048, q2, CodegenStyle::Optimized)),
        // duplicate of the first spec: must be served from the cache
        Box::new(NttSpec::new(
            1024,
            q1,
            Direction::Forward,
            CodegenStyle::Optimized,
        )),
    ];
    let refs: Vec<&dyn KernelSpec> = specs.iter().map(Box::as_ref).collect();
    let reports = session.run_batch(&refs).unwrap();

    assert_eq!(reports.len(), 9);
    for (report, spec) in reports.iter().zip(&refs) {
        assert!(
            report.verified,
            "spec {:?} must verify against its golden model",
            spec.key()
        );
        assert!(report.runtime_us > 0.0);
    }
    let ops: Vec<KernelOp> = reports.iter().map(|r| r.op).collect();
    assert!(ops.contains(&KernelOp::Ntt));
    assert!(ops.contains(&KernelOp::PointwiseMul));
    assert!(ops.contains(&KernelOp::PointwiseAdd));
    assert!(ops.contains(&KernelOp::NegacyclicMul));

    let stats = session.cache_stats();
    assert_eq!(stats.misses, 8, "eight distinct kernels generated");
    assert_eq!(stats.hits, 1, "the duplicate spec hits the cache");
}

/// A throwaway session (the pattern the removed one-shot shims
/// delegated to) must produce the same numbers as a held session — the
/// cache only amortizes cost, it never changes results.
#[test]
fn fresh_and_held_sessions_report_identical_numbers() {
    let n = 1024usize;
    let rpu = Rpu::builder().build().unwrap();

    let fresh = rpu
        .session()
        .ntt(n, Direction::Forward, CodegenStyle::Optimized)
        .unwrap();
    let mut held = rpu.session();
    let warm = {
        held.ntt(n, Direction::Forward, CodegenStyle::Optimized)
            .unwrap();
        held.ntt(n, Direction::Forward, CodegenStyle::Optimized)
            .unwrap()
    };
    assert_eq!(fresh.n, warm.n);
    assert_eq!(fresh.q, warm.q);
    assert_eq!(fresh.stats.cycles, warm.stats.cycles);
    assert_eq!(fresh.runtime_us, warm.runtime_us);
    assert_eq!(fresh.energy.total_uj(), warm.energy.total_uj());
    assert_eq!(fresh.mix, warm.mix);
    assert!(fresh.verified && warm.verified);
    assert!(!fresh.cache_hit && warm.cache_hit);

    let q = prime(n);
    let spec = NttSpec::new(n, q, Direction::Inverse, CodegenStyle::Optimized);
    let explicit = rpu.session().run(&spec).unwrap();
    let via_spec = rpu.session().run(&spec).unwrap();
    assert_eq!(explicit.stats.cycles, via_spec.stats.cycles);
    assert_eq!(explicit.runtime_us, via_spec.runtime_us);
    assert!(explicit.verified && via_spec.verified);
}

/// Cache-accounting audit pin: every `run()`/`ntt()` call performs
/// exactly ONE cache lookup (hits + misses advance by one per call,
/// never two), and throwaway sessions are stateless — each one is a
/// fresh single-lookup cache, so repeated single-use sessions report
/// `cache_hit == false` with otherwise identical numbers.
#[test]
fn session_cache_accounting_is_one_lookup_per_run() {
    let n = 1024usize;
    let rpu = Rpu::builder().build().unwrap();

    // Held session: lookups == calls, whatever mix of run()/ntt().
    let mut s = rpu.session();
    let spec = NttSpec::new(n, prime(n), Direction::Forward, CodegenStyle::Optimized);
    let mut calls = 0u64;
    for _ in 0..3 {
        s.run(&spec).unwrap();
        calls += 1;
        let st = s.cache_stats();
        assert_eq!(
            st.hits + st.misses,
            calls,
            "run() must cost exactly one lookup per call"
        );
    }
    for _ in 0..2 {
        s.ntt(n, Direction::Forward, CodegenStyle::Optimized)
            .unwrap();
        calls += 1;
        let st = s.cache_stats();
        assert_eq!(
            st.hits + st.misses,
            calls,
            "ntt() must cost exactly one lookup per call"
        );
    }
    let st = s.cache_stats();
    assert_eq!(st.misses, 1, "one distinct shape generated once");
    assert_eq!(st.hits, calls - 1);

    // Throwaway sessions: stateless, never a phantom hit, reports
    // repeat exactly.
    let first = rpu
        .session()
        .ntt(n, Direction::Forward, CodegenStyle::Optimized)
        .unwrap();
    let second = rpu
        .session()
        .ntt(n, Direction::Forward, CodegenStyle::Optimized)
        .unwrap();
    assert!(!first.cache_hit && !second.cache_hit);
    assert_eq!(first.stats.cycles, second.stats.cycles);
    assert_eq!(
        first.transfer.host_to_device,
        second.transfer.host_to_device
    );
}
