//! `RlweEvaluator` integration tests: ciphertext pipelines dispatched
//! over device-resident buffers must agree with the host-side
//! [`rpu::ntt::rlwe::RlweContext`] reference — exactly, not just after
//! decryption, because both paths draw the same randomness stream.

use rpu::ntt::rlwe::{RlweContext, RlweParams, Splitmix};
use rpu::ntt::testutil::{schoolbook_negacyclic, test_vector};
use rpu::{CodegenStyle, RlweEvaluator, Rpu, RpuError};

const N: usize = 1024;
const T: u128 = 65537;

fn params(rpu: &Rpu) -> RlweParams {
    let q = rpu.session().primes_for(N).expect("prime exists");
    RlweParams { n: N, q, t: T }
}

fn message(seed: u128) -> Vec<u128> {
    (0..N as u128).map(|i| (i * 31 + seed) % 1000).collect()
}

#[test]
fn encrypt_decrypt_round_trip_on_rpu() {
    let rpu = Rpu::builder().build().unwrap();
    let mut eval = RlweEvaluator::new(&rpu, params(&rpu), CodegenStyle::Optimized).unwrap();
    let mut rng = Splitmix::new(0xB512);
    eval.keygen(&mut rng).unwrap();
    let msg = message(1);
    let ct = eval.encrypt(&msg, &mut rng).unwrap();
    assert_eq!(eval.decrypt(&ct).unwrap(), msg);
}

#[test]
fn device_ciphertext_equals_host_ciphertext() {
    // Same seed through the evaluator and the host context: the
    // on-device ciphertext must be the *same ring elements*, and the
    // host key must decrypt what the device encrypted.
    let rpu = Rpu::builder().build().unwrap();
    let p = params(&rpu);
    let mut eval = RlweEvaluator::new(&rpu, p, CodegenStyle::Optimized).unwrap();
    let host = RlweContext::new(p).unwrap();

    let mut dev_rng = Splitmix::new(42);
    let mut host_rng = Splitmix::new(42);
    let sk = eval.keygen(&mut dev_rng).unwrap();
    let host_sk = host.keygen(&mut host_rng);
    let msg = message(7);
    let dev_ct = eval.encrypt(&msg, &mut dev_rng).unwrap();
    let host_ct = host.encrypt(&host_sk, &msg, &mut host_rng);

    let downloaded = eval.download_ciphertext(&dev_ct).unwrap();
    assert_eq!(downloaded.a().values(), host_ct.a().values());
    assert_eq!(downloaded.b().values(), host_ct.b().values());
    // cross decryption: host key opens the device ciphertext
    assert_eq!(host.decrypt(&sk, &downloaded), msg);
}

#[test]
fn homomorphic_ops_match_host_reference() {
    let rpu = Rpu::builder().build().unwrap();
    let p = params(&rpu);
    let mut eval = RlweEvaluator::new(&rpu, p, CodegenStyle::Optimized).unwrap();
    let host = RlweContext::new(p).unwrap();
    let mut dev_rng = Splitmix::new(9);
    let mut host_rng = Splitmix::new(9);
    // seed-identical keys: `sk` lives in the evaluator's ring context,
    // `host_sk` in the host context; same ternary polynomial either way
    let _sk = eval.keygen(&mut dev_rng).unwrap();
    let host_sk = host.keygen(&mut host_rng);

    let m1 = message(3);
    let m2 = message(0);
    let x = eval.encrypt(&m1, &mut dev_rng).unwrap();
    let y = eval.encrypt(&m2, &mut dev_rng).unwrap();
    let hx = host.encrypt(&host_sk, &m1, &mut host_rng);
    let hy = host.encrypt(&host_sk, &m2, &mut host_rng);

    // add
    let sum = eval.add(&x, &y).unwrap();
    let host_sum = host.add(&hx, &hy);
    assert_eq!(
        eval.download_ciphertext(&sum).unwrap().b().values(),
        host_sum.b().values()
    );
    assert_eq!(
        eval.decrypt(&sum).unwrap(),
        host.decrypt(&host_sk, &host_sum),
        "on-RPU add decrypts like the host add"
    );

    // sub (m1 >= m2 slot-wise by construction)
    let diff = eval.sub(&x, &y).unwrap();
    assert_eq!(
        eval.decrypt(&diff).unwrap(),
        host.decrypt(&host_sk, &host.sub(&hx, &hy))
    );

    // mul_plain by x^1 + 2 (small coefficients)
    let mut plain = vec![0u128; N];
    plain[0] = 2;
    plain[1] = 1;
    let prod = eval.mul_plain(&x, &plain).unwrap();
    let host_prod = host.mul_plain(&hx, &plain);
    assert_eq!(
        eval.decrypt(&prod).unwrap(),
        host.decrypt(&host_sk, &host_prod),
        "on-RPU mul_plain decrypts like the host mul_plain"
    );

    // freeing resident ciphertexts releases the heap
    for ct in [x, y, sum, diff, prod] {
        eval.free_ciphertext(ct).unwrap();
    }
}

#[test]
fn ciphertext_mult_dataflow_matches_schoolbook() {
    // The fused convolution dispatch over resident coefficient buffers
    // — the polynomial product inside a ciphertext-ciphertext multiply.
    let rpu = Rpu::builder().build().unwrap();
    let p = params(&rpu);
    let mut eval = RlweEvaluator::new(&rpu, p, CodegenStyle::Optimized).unwrap();
    let a = test_vector(N, p.q, 5);
    let b = test_vector(N, p.q, 6);
    let da = eval.session().upload(&a).unwrap();
    let db = eval.session().upload(&b).unwrap();
    let dc = eval.convolve(&da, &db).unwrap();
    let got = eval.session().download(&dc).unwrap();
    let m = rpu::arith::Modulus128::new(p.q).unwrap();
    assert_eq!(got, schoolbook_negacyclic(m, &a, &b));
}

#[test]
fn rekeying_replaces_the_resident_key_on_any_lane_count() {
    // Regression: on a single lane both key slots hold the *same*
    // resident buffer; a second keygen must free it once, not twice.
    for lanes in [1usize, 2] {
        let rpu = Rpu::builder().lanes(lanes).build().unwrap();
        let mut eval = RlweEvaluator::new(&rpu, params(&rpu), CodegenStyle::Optimized).unwrap();
        let mut rng = Splitmix::new(0xD00D);
        eval.keygen(&mut rng).unwrap();
        eval.keygen(&mut rng).unwrap(); // re-key: frees the old key cleanly
        let msg = message(4);
        let ct = eval.encrypt(&msg, &mut rng).unwrap();
        assert_eq!(
            eval.decrypt(&ct).unwrap(),
            msg,
            "the new key must decrypt ({lanes} lane(s))"
        );
    }
}

#[test]
fn evaluator_requires_keygen_and_compiles_each_shape_once() {
    let rpu = Rpu::builder().build().unwrap();
    let p = params(&rpu);
    let mut eval = RlweEvaluator::new(&rpu, p, CodegenStyle::Optimized).unwrap();
    let mut rng = Splitmix::new(1);
    assert!(matches!(
        eval.encrypt(&message(0), &mut rng),
        Err(RpuError::Config(_))
    ));
    eval.keygen(&mut rng).unwrap();
    let ct1 = eval.encrypt(&message(1), &mut rng).unwrap();
    let ct2 = eval.encrypt(&message(2), &mut rng).unwrap();
    let _ = eval.add(&ct1, &ct2).unwrap();
    let stats = eval.session().cache_stats();
    assert_eq!(
        stats.misses, 6,
        "six kernel shapes compiled at construction, never again"
    );
    assert_eq!(stats.entries, 6);
}
