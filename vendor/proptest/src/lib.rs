//! Offline, API-compatible subset of the `proptest` crate.
//!
//! The build environment has no registry access, so this stub provides
//! exactly the surface the workspace's property tests use: the
//! [`proptest!`] macro (including the `#![proptest_config(..)]` header),
//! the [`strategy::Strategy`] trait with `prop_map`/`boxed`, integer
//! range and tuple strategies, [`strategy::Just`], [`prop_oneof!`],
//! `prop::collection::vec`, `any::<T>()`, and the `prop_assert*`
//! macros.
//!
//! Cases are drawn uniformly from a deterministic SplitMix64 stream (no
//! shrinking). `PROPTEST_CASES` and `PROPTEST_SEED` env vars override
//! the case count and base seed.

/// Deterministic test RNG (SplitMix64).
pub mod rng {
    /// A small deterministic RNG; one instance per property test run.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates an RNG from a seed.
        pub fn new(seed: u64) -> Self {
            Self {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// Next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Next 128 uniformly random bits.
        pub fn next_u128(&mut self) -> u128 {
            ((self.next_u64() as u128) << 64) | self.next_u64() as u128
        }

        /// Uniform draw from `[0, bound)` for a non-zero `bound`
        /// (modulo reduction; the bias is irrelevant for testing).
        pub fn below_u128(&mut self, bound: u128) -> u128 {
            debug_assert!(bound > 0);
            self.next_u128() % bound
        }
    }
}

/// Run configuration, mirroring `proptest::test_runner::ProptestConfig`.
pub mod test_runner {
    /// Controls how many cases each property test draws.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }

        /// Resolves the effective case count, honouring `PROPTEST_CASES`.
        pub fn effective_cases(&self) -> u32 {
            std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(self.cases)
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// Base seed for the deterministic RNG, honouring `PROPTEST_SEED`.
    pub fn base_seed() -> u64 {
        std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0x5EED_0000_0000_0001)
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::rng::TestRng;

    /// A source of random values of type `Self::Value`.
    ///
    /// Object-safe core (`new_value`) plus sized combinators.
    pub trait Strategy {
        /// The type of values produced.
        type Value;

        /// Draws one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn new_value(&self, rng: &mut TestRng) -> V {
            (**self).new_value(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn new_value(&self, rng: &mut TestRng) -> S::Value {
            (**self).new_value(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` adapter.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn new_value(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// Uniform choice among boxed alternatives (`prop_oneof!`).
    pub struct OneOf<V>(pub Vec<BoxedStrategy<V>>);

    impl<V> Strategy for OneOf<V> {
        type Value = V;
        fn new_value(&self, rng: &mut TestRng) -> V {
            let i = rng.below_u128(self.0.len() as u128) as usize;
            self.0[i].new_value(rng)
        }
    }

    impl<V> std::fmt::Debug for OneOf<V> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "OneOf({} alternatives)", self.0.len())
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),*) => {$(
            // Spans are computed with wrapping u128 arithmetic so that
            // signed bounds (sign-extended by `as u128`) and full-domain
            // ranges (span wraps to 0) are both handled; deltas are added
            // back in the value's own domain.
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    self.start.wrapping_add(rng.below_u128(span) as $t)
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u128)
                        .wrapping_sub(lo as u128)
                        .wrapping_add(1);
                    if span == 0 {
                        // full 128-bit domain
                        rng.next_u128() as $t
                    } else {
                        lo.wrapping_add(rng.below_u128(span) as $t)
                    }
                }
            }
            impl Strategy for std::ops::RangeFrom<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    (self.start..=<$t>::MAX).new_value(rng)
                }
            }
        )*};
    }

    int_range_strategies!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

    macro_rules! tuple_strategies {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::rng::TestRng;
    use crate::strategy::Strategy;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws a uniformly random value of the full domain.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u128() as $t
                }
            }
        )*};
    }
    arb_uint!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Default)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// The full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::rng::TestRng;
    use crate::strategy::Strategy;

    /// An inclusive-exclusive length range for collection strategies.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo + 1) as u128;
            let len = self.size.lo + rng.below_u128(span) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Everything a property-test module needs, mirroring
/// `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirrors the `prop` module re-export in the real prelude
    /// (`prop::collection::vec(..)`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Uniform choice among strategies with a common value type. Weights
/// (`w => strategy`) are accepted and ignored (choice stays uniform).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf(vec![$($crate::strategy::Strategy::boxed($strat)),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf(vec![$($crate::strategy::Strategy::boxed($strat)),+])
    };
}

/// Defines property tests. Supports the `#![proptest_config(expr)]`
/// header and any number of `fn name(pat in strategy, ...) { body }`
/// items, each compiled to a `#[test]` that draws the configured number
/// of cases deterministically.
#[macro_export]
macro_rules! proptest {
    // Terminal for the muncher.
    (@munch ($cfg:expr)) => {};

    // One test fn, then recurse on the rest.
    (@munch ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let cases = config.effective_cases();
            // Per-test seed: base seed mixed with the test name so
            // sibling tests draw distinct streams.
            let mut seed = $crate::test_runner::base_seed();
            for b in stringify!($name).bytes() {
                seed = seed.wrapping_mul(1099511628211).wrapping_add(b as u64);
            }
            let mut rng = $crate::rng::TestRng::new(seed);
            for case in 0..cases {
                let _ = case;
                $(let $pat = $crate::strategy::Strategy::new_value(&($strat), &mut rng);)+
                $body
            }
        }
        $crate::proptest!(@munch ($cfg) $($rest)*);
    };

    // Entry with explicit config.
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@munch ($cfg) $($rest)*);
    };

    // Entry with default config.
    ($($rest:tt)*) => {
        $crate::proptest!(
            @munch (<$crate::test_runner::ProptestConfig as ::core::default::Default>::default())
            $($rest)*
        );
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::rng::TestRng;

    fn rng() -> TestRng {
        TestRng::new(42)
    }

    #[test]
    fn ranges_cover_edge_domains() {
        let mut r = rng();
        // Full u128 domain (span wraps to 0) and full u64 domain.
        let _: u128 = Strategy::new_value(&(0u128..), &mut r);
        let _: u64 = Strategy::new_value(&(0u64..=u64::MAX), &mut r);
        // Signed range straddling zero.
        for _ in 0..64 {
            let v = Strategy::new_value(&(-5i32..=5), &mut r);
            assert!((-5..=5).contains(&v));
            let w = Strategy::new_value(&(-8i64..8), &mut r);
            assert!((-8..8).contains(&w));
        }
    }

    #[test]
    fn oneof_and_map_compose() {
        let mut r = rng();
        let s = prop_oneof![Just(1u8), (10u8..20).prop_map(|v| v + 1)];
        for _ in 0..64 {
            let v = s.new_value(&mut r);
            assert!(v == 1 || (11..21).contains(&v));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn macro_draws_within_bounds(a in 3u32..10, (b, c) in (any::<u64>(), 1usize..=4)) {
            prop_assert!((3..10).contains(&a));
            let _ = b;
            prop_assert!((1..=4).contains(&c));
        }
    }
}
