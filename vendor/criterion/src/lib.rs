//! Offline, API-compatible subset of the `criterion` crate.
//!
//! Provides the types and macros the workspace's benches use:
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher`] (`iter`,
//! `iter_batched`), [`BenchmarkId`], [`Throughput`], [`BatchSize`],
//! [`black_box`], and both forms of [`criterion_group!`] plus
//! [`criterion_main!`]. Instead of criterion's statistical machinery it
//! runs a short timing loop and prints one mean per benchmark, so
//! `cargo bench` completes in seconds.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity function.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How expensive the per-iteration setup input is (ignored by the stub
/// beyond API compatibility).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Fresh batch every iteration.
    PerIteration,
}

/// Declared throughput of one iteration, echoed in the report line.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// Accepts both `&str` names and [`BenchmarkId`]s.
pub trait IntoBenchmarkId {
    /// Renders the identifier.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Passed to benchmark closures; drives the timing loop.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the configured iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` with untimed per-iteration `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }

    /// Like [`Bencher::iter_batched`] but passing the input by `&mut`.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_one(
    label: &str,
    iters: u64,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter_ns = b.elapsed.as_nanos() as f64 / iters.max(1) as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) if per_iter_ns > 0.0 => {
            format!("  ({:.1} Melem/s)", n as f64 / per_iter_ns * 1e3)
        }
        Some(Throughput::Bytes(n)) if per_iter_ns > 0.0 => {
            format!("  ({:.1} MiB/s)", n as f64 / per_iter_ns * 1e3 / 1.048_576)
        }
        _ => String::new(),
    };
    println!("bench: {label:<48} {per_iter_ns:>14.1} ns/iter{rate}");
}

/// Stub measurement driver; holds the configured sample size.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the target measurement time (accepted, ignored).
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Sets the warm-up time (accepted, ignored).
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _parent: std::marker::PhantomData,
        }
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.into_id(), self.sample_size as u64, None, &mut f);
        self
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark iteration count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the target measurement time (accepted, ignored).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Declares the throughput of subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a benchmark that receives a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_id());
        run_one(&label, self.sample_size as u64, self.throughput, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_id());
        run_one(&label, self.sample_size as u64, self.throughput, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a callable group. Supports both the
/// positional form and the `name/config/targets` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = ::core::default::Default::default();
            targets = $($target),+
        );
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
