//! `#[derive(Serialize)]` for the vendored serde subset.
//!
//! Supports structs with named fields; each field type must itself
//! implement `serde::Serialize`. Written against `proc_macro` alone
//! (no `syn`/`quote` — the build environment is offline).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (the vendored JSON-rendering trait) for a
/// named-field struct.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();

    // Find `struct <Name>` and the brace-delimited field group.
    let mut name = None;
    let mut body = None;
    let mut iter = tokens.iter().peekable();
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(id) = tt {
            if id.to_string() == "struct" {
                if let Some(TokenTree::Ident(n)) = iter.next() {
                    name = Some(n.to_string());
                }
                // Skip generics/where clauses until the brace group.
                for tt2 in iter.by_ref() {
                    if let TokenTree::Group(g) = tt2 {
                        if g.delimiter() == Delimiter::Brace {
                            body = Some(g.stream());
                            break;
                        }
                    }
                }
                break;
            }
        }
    }
    let (name, body) = match (name, body) {
        (Some(n), Some(b)) => (n, b),
        _ => panic!("#[derive(Serialize)] (vendored) supports only structs with named fields"),
    };

    // Collect field names: idents immediately followed by `:` while not
    // inside a generic-argument list (tracked via `<`/`>` depth; groups
    // are single token trees so parens/brackets need no tracking).
    let mut fields = Vec::new();
    let body_tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut angle_depth = 0i32;
    let mut i = 0;
    while i < body_tokens.len() {
        match &body_tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Ident(id) if angle_depth == 0 => {
                let is_field = matches!(
                    body_tokens.get(i + 1),
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' && p.to_string() == ":"
                );
                // `::` paths appear inside types; a field ident is
                // preceded by start-of-stream, `,`, or `pub`.
                let prev_ok = match body_tokens.get(i.wrapping_sub(1)) {
                    None => true,
                    Some(TokenTree::Punct(p)) => p.as_char() == ',',
                    Some(TokenTree::Ident(p)) => p.to_string() == "pub",
                    Some(TokenTree::Group(_)) => true, // after an attr or pub(..)
                    _ => false,
                };
                // Reject the second colon of `::`.
                let single_colon = !matches!(
                    body_tokens.get(i + 2),
                    Some(TokenTree::Punct(p)) if p.as_char() == ':'
                );
                if is_field && prev_ok && single_colon && id.to_string() != "pub" {
                    fields.push(id.to_string());
                }
            }
            _ => {}
        }
        i += 1;
    }

    let mut push_fields = String::new();
    for (idx, f) in fields.iter().enumerate() {
        if idx > 0 {
            push_fields.push_str("out.push(',');");
        }
        push_fields.push_str(&format!(
            "out.push_str(\"\\\"{f}\\\":\"); ::serde::Serialize::serialize_json(&self.{f}, out);"
        ));
    }

    format!(
        "impl ::serde::Serialize for {name} {{\n\
            fn serialize_json(&self, out: &mut String) {{\n\
                out.push('{{'); {push_fields} out.push('}}');\n\
            }}\n\
        }}"
    )
    .parse()
    .expect("generated impl parses")
}
