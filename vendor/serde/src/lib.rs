//! Offline, API-compatible subset of `serde`: a [`Serialize`] trait
//! that renders straight to JSON, plus the `#[derive(Serialize)]` proc
//! macro re-exported from `serde_derive`. `serde_json` in this vendor
//! set drives the trait.

pub use serde_derive::Serialize;

/// Types that can render themselves as a JSON value.
///
/// This deliberately skips real serde's serializer abstraction: the
/// workspace only ever serializes simple report structs to JSON.
pub trait Serialize {
    /// Appends the JSON encoding of `self` to `out`.
    fn serialize_json(&self, out: &mut String);
}

/// Escapes and appends a JSON string literal.
pub fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Serialize for String {
    fn serialize_json(&self, out: &mut String) {
        write_json_string(self, out);
    }
}

impl Serialize for str {
    fn serialize_json(&self, out: &mut String) {
        write_json_string(self, out);
    }
}

impl Serialize for bool {
    fn serialize_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

macro_rules! serialize_display {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }
    )*};
}
serialize_display!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Serialize for f64 {
    fn serialize_json(&self, out: &mut String) {
        if self.is_finite() {
            out.push_str(&self.to_string());
        } else {
            out.push_str("null");
        }
    }
}

impl Serialize for f32 {
    fn serialize_json(&self, out: &mut String) {
        (*self as f64).serialize_json(out);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_json(&self, out: &mut String) {
        out.push('[');
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            v.serialize_json(out);
        }
        out.push(']');
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self, out: &mut String) {
        self.as_slice().serialize_json(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self, out: &mut String) {
        match self {
            Some(v) => v.serialize_json(out),
            None => out.push_str("null"),
        }
    }
}
