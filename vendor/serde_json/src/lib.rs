//! Offline subset of `serde_json` over the vendored `serde::Serialize`
//! trait: `to_string` and `to_string_pretty` (the pretty form re-indents
//! the compact rendering).

use std::fmt;

/// Serialization error (the vendored pipeline is infallible; this exists
/// for signature compatibility).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json stub error")
    }
}

impl std::error::Error for Error {}

/// Renders `value` as compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize_json(&mut out);
    Ok(out)
}

/// Renders `value` as indented JSON.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let compact = to_string(value)?;
    let mut out = String::new();
    let mut indent = 0usize;
    let mut in_str = false;
    let mut escape = false;
    for c in compact.chars() {
        if in_str {
            out.push(c);
            if escape {
                escape = false;
            } else if c == '\\' {
                escape = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => {
                in_str = true;
                out.push(c);
            }
            '{' | '[' => {
                indent += 1;
                out.push(c);
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
            }
            '}' | ']' => {
                indent = indent.saturating_sub(1);
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(c);
            }
            ',' => {
                out.push(c);
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
            }
            ':' => {
                out.push(c);
                out.push(' ');
            }
            c => out.push(c),
        }
    }
    Ok(out)
}
